#include "wire/wire.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>

namespace xehe::wire {

namespace {

void check(bool condition, const char *what) {
    if (!condition) {
        throw WireError(what);
    }
}

void expect_tag(Reader &r, Tag tag, const char *what) {
    check(r.u8() == static_cast<uint8_t>(tag), what);
}

/// Degrees the scheme supports: powers of two from 8 (tiny test contexts)
/// to 2^17 (beyond the paper's N = 32K operating point).
void check_degree(uint64_t n) {
    check(util::is_power_of_two(n) && n >= 8 && n <= (uint64_t{1} << 17),
          "wire: bad poly degree");
}

void check_modulus_value(uint64_t value) {
    check(value >= 2 &&
              util::significant_bits(value) <= util::Modulus::kMaxBits,
          "wire: bad modulus value");
}

void check_scale(double scale) {
    check(std::isfinite(scale) && scale > 0.0, "wire: bad scale");
}

bool read_flag(Reader &r) {
    const uint8_t v = r.u8();
    check(v <= 1, "wire: bad flag byte");
    return v != 0;
}

/// Every residue of one component must already be reduced mod q; anything
/// else is corruption (and would be UB-adjacent downstream, where lazy
/// reduction assumes canonical inputs).
void check_residues(std::span<const uint64_t> component,
                    const util::Modulus &q) {
    for (const uint64_t x : component) {
        check(x < q.value(), "wire: residue out of range");
    }
}

/// Reads `words` residues into `out` and validates them against the first
/// `rns` context moduli, one component (n words) at a time.
void read_components(Reader &r, const ckks::CkksContext &ctx,
                     std::span<uint64_t> out, std::size_t rns, std::size_t n) {
    r.words(out);
    for (std::size_t c = 0; c * n < out.size(); ++c) {
        check_residues(out.subspan(c * n, n), ctx.key_modulus()[c % rns]);
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

void Writer::u8(uint8_t v) {
    if (counting_) {
        ++count_;
        return;
    }
    buf_.push_back(v);
}

void Writer::u16(uint16_t v) {
    if (counting_) {
        count_ += 2;
        return;
    }
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::u32(uint32_t v) {
    if (counting_) {
        count_ += 4;
        return;
    }
    for (int i = 0; i < 4; ++i) {
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void Writer::u64(uint64_t v) {
    if (counting_) {
        count_ += 8;
        return;
    }
    for (int i = 0; i < 8; ++i) {
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void Writer::f64(double v) {
    u64(std::bit_cast<uint64_t>(v));
}

void Writer::words(std::span<const uint64_t> v) {
    if (counting_) {
        count_ += v.size() * 8;
        return;
    }
    if constexpr (std::endian::native == std::endian::little) {
        const std::size_t old = buf_.size();
        buf_.resize(old + v.size() * 8);
        std::memcpy(buf_.data() + old, v.data(), v.size() * 8);
    } else {
        for (const uint64_t x : v) {
            u64(x);
        }
    }
}

void Writer::bytes(std::span<const uint8_t> v) {
    if (counting_) {
        count_ += v.size();
        return;
    }
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::patch_u64(std::size_t offset, uint64_t v) {
    assert(!counting_ && offset + 8 <= buf_.size());
    for (int i = 0; i < 8; ++i) {
        buf_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
}

void Reader::need(std::size_t count) const {
    if (remaining() < count) {
        throw WireError("wire: truncated buffer");
    }
}

uint8_t Reader::u8() {
    need(1);
    return data_[pos_++];
}

uint16_t Reader::u16() {
    need(2);
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
        v = static_cast<uint16_t>(v | (static_cast<uint16_t>(data_[pos_++])
                                       << (8 * i)));
    }
    return v;
}

uint32_t Reader::u32() {
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
}

uint64_t Reader::u64() {
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
}

double Reader::f64() {
    return std::bit_cast<double>(u64());
}

void Reader::words(std::span<uint64_t> out) {
    // Divide instead of multiplying: a huge (attacker-influenced) word
    // count must not wrap `count * 8` past the bounds check.
    if (remaining() / 8 < out.size()) {
        throw WireError("wire: truncated buffer");
    }
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(out.data(), data_.data() + pos_, out.size() * 8);
        pos_ += out.size() * 8;
    } else {
        for (auto &x : out) {
            x = u64();
        }
    }
}

std::span<const uint8_t> Reader::bytes(std::size_t count) {
    need(count);
    auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

namespace detail {

uint64_t fnv1a64(std::span<const uint8_t> data) {
    uint64_t hash = 14695981039346656037ull;
    for (const uint8_t byte : data) {
        hash ^= byte;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::span<const uint8_t> open_envelope(std::span<const uint8_t> buffer) {
    Reader r(buffer);
    if (buffer.size() < kEnvelopeBytes) {
        throw WireError("wire: buffer shorter than envelope");
    }
    check(r.u32() == kMagic, "wire: bad magic");
    check(r.u16() == kVersion, "wire: unsupported version");
    check(r.u16() == 0, "wire: bad reserved field");
    // Exact-length equality before the payload is even viewed: a
    // malformed payload_len (up to SIZE_MAX) is rejected here, before
    // any allocation or arithmetic that could wrap.
    const uint64_t payload_len = r.u64();
    check(payload_len == buffer.size() - kEnvelopeBytes,
          "wire: payload length mismatch");
    const auto payload = r.bytes(payload_len);
    check(r.u64() == fnv1a64(payload), "wire: checksum mismatch");
    return payload;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Modulus chains and parameters
// ---------------------------------------------------------------------------

void save(Writer &w, const util::Modulus &m) {
    w.u8(static_cast<uint8_t>(Tag::Modulus));
    w.u64(m.value());
}

void load(Reader &r, util::Modulus &m) {
    expect_tag(r, Tag::Modulus, "wire: expected Modulus");
    const uint64_t value = r.u64();
    check_modulus_value(value);
    // Barrett constants are derived, not shipped: reconstruction is exact.
    m = util::Modulus(value);
}

void save(Writer &w, const std::vector<util::Modulus> &chain) {
    w.u8(static_cast<uint8_t>(Tag::ModulusChain));
    w.u64(chain.size());
    for (const auto &m : chain) {
        w.u64(m.value());
    }
}

void load(Reader &r, std::vector<util::Modulus> &chain) {
    expect_tag(r, Tag::ModulusChain, "wire: expected ModulusChain");
    const uint64_t count = r.u64();
    check(count >= 1 && count <= 1024, "wire: bad modulus chain length");
    chain.clear();
    chain.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t value = r.u64();
        check_modulus_value(value);
        chain.emplace_back(value);
    }
}

void save(Writer &w, const ckks::EncryptionParameters &params) {
    w.u8(static_cast<uint8_t>(Tag::Parameters));
    w.u64(params.poly_degree);
    w.u64(params.coeff_modulus.size());
    for (const auto &m : params.coeff_modulus) {
        w.u64(m.value());
    }
}

void load(Reader &r, ckks::EncryptionParameters &params) {
    expect_tag(r, Tag::Parameters, "wire: expected Parameters");
    const uint64_t degree = r.u64();
    check_degree(degree);
    const uint64_t count = r.u64();
    // L data primes + the special prime; 64 is far beyond any real chain.
    check(count >= 2 && count <= 64, "wire: bad coeff modulus count");
    params.poly_degree = degree;
    params.coeff_modulus.clear();
    params.coeff_modulus.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t value = r.u64();
        check_modulus_value(value);
        // Every coeff modulus must support the negacyclic NTT at this
        // degree — a corrupted prime would otherwise blow up only later,
        // inside CkksContext table construction.
        check(value % (2 * degree) == 1, "wire: modulus not NTT-friendly");
        params.coeff_modulus.emplace_back(value);
    }
}

// ---------------------------------------------------------------------------
// Plaintext / Ciphertext
// ---------------------------------------------------------------------------

void save(Writer &w, const ckks::Plaintext &plain) {
    w.u8(static_cast<uint8_t>(Tag::Plaintext));
    w.u64(plain.n);
    w.u64(plain.rns);
    w.f64(plain.scale);
    w.u8(plain.ntt_form ? 1 : 0);
    w.words(plain.data);
}

void load(Reader &r, const ckks::CkksContext &ctx, ckks::Plaintext &plain) {
    expect_tag(r, Tag::Plaintext, "wire: expected Plaintext");
    const uint64_t n = r.u64();
    const uint64_t rns = r.u64();
    check(n == ctx.n(), "wire: plaintext degree mismatch");
    // Data objects live under the data primes only; a plaintext "at" the
    // special prime cannot come from the encoder.
    check(rns >= 1 && rns <= ctx.max_level(), "wire: bad plaintext level");
    const double scale = r.f64();
    check_scale(scale);
    plain.n = n;
    plain.rns = rns;
    plain.scale = scale;
    plain.ntt_form = read_flag(r);
    plain.data.resize(rns * n);
    read_components(r, ctx, plain.data, rns, n);
}

void save(Writer &w, const ckks::Ciphertext &ct) {
    w.u8(static_cast<uint8_t>(Tag::Ciphertext));
    const bool seeded = ct.a_seeded && ct.size == 2;
    w.u64(ct.n);
    w.u64(ct.size);
    w.u64(ct.rns);
    w.f64(ct.scale);
    w.u8(ct.ntt_form ? 1 : 0);
    w.u8(seeded ? 1 : 0);
    const std::size_t stored_polys = seeded ? ct.size - 1 : ct.size;
    w.words(std::span<const uint64_t>(ct.data)
                .subspan(0, stored_polys * ct.rns * ct.n));
    if (seeded) {
        w.u64(ct.a_seed);
    }
}

namespace {

/// Shared ciphertext body parser.  `key_base` distinguishes the two legal
/// shapes: ciphertexts nested inside keys live over the full key base
/// (rns == key_rns, size 2), while data ciphertexts are capped at the
/// data primes — no encryptor produces a ciphertext "at" the special
/// prime, so the wire must not construct one either.
void load_ciphertext_body(Reader &r, const ckks::CkksContext &ctx,
                          ckks::Ciphertext &ct, bool key_base) {
    expect_tag(r, Tag::Ciphertext, "wire: expected Ciphertext");
    const uint64_t n = r.u64();
    const uint64_t size = r.u64();
    const uint64_t rns = r.u64();
    check(n == ctx.n(), "wire: ciphertext degree mismatch");
    check(size >= 2 && size <= 3, "wire: bad ciphertext size");
    if (key_base) {
        check(size == 2 && rns == ctx.key_rns(), "wire: bad key shape");
    } else {
        check(rns >= 1 && rns <= ctx.max_level(),
              "wire: bad ciphertext level");
    }
    const double scale = r.f64();
    check_scale(scale);
    const bool ntt_form = read_flag(r);
    const bool seeded = read_flag(r);
    check(!seeded || size == 2, "wire: seeded ciphertext must have size 2");
    ct.resize(n, size, rns);
    ct.scale = scale;
    ct.ntt_form = ntt_form;
    const std::size_t stored_polys = seeded ? size - 1 : size;
    read_components(r, ctx,
                    std::span<uint64_t>(ct.data)
                        .subspan(0, stored_polys * rns * n),
                    rns, n);
    if (seeded) {
        ct.a_seed = r.u64();
        ct.a_seeded = true;
        util::expand_uniform_seeded(
            ct.poly(1),
            std::span<const util::Modulus>(ctx.key_modulus().data(), rns), n,
            ct.a_seed);
    }
}

}  // namespace

void load(Reader &r, const ckks::CkksContext &ctx, ckks::Ciphertext &ct) {
    load_ciphertext_body(r, ctx, ct, /*key_base=*/false);
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

void save(Writer &w, const ckks::SecretKey &sk) {
    w.u8(static_cast<uint8_t>(Tag::SecretKey));
    w.u64(sk.data.size());
    w.words(sk.data);
}

void load(Reader &r, const ckks::CkksContext &ctx, ckks::SecretKey &sk) {
    expect_tag(r, Tag::SecretKey, "wire: expected SecretKey");
    const uint64_t words = r.u64();
    check(words == ctx.key_rns() * ctx.n(), "wire: secret key size mismatch");
    sk.data.resize(words);
    read_components(r, ctx, sk.data, ctx.key_rns(), ctx.n());
}

void save(Writer &w, const ckks::PublicKey &pk) {
    w.u8(static_cast<uint8_t>(Tag::PublicKey));
    save(w, pk.ct);
}

void load(Reader &r, const ckks::CkksContext &ctx, ckks::PublicKey &pk) {
    expect_tag(r, Tag::PublicKey, "wire: expected PublicKey");
    load_ciphertext_body(r, ctx, pk.ct, /*key_base=*/true);
}

void save(Writer &w, const ckks::KSwitchKey &key) {
    w.u8(static_cast<uint8_t>(Tag::KSwitchKey));
    w.u64(key.keys.size());
    for (const auto &ct : key.keys) {
        save(w, ct);
    }
}

void load(Reader &r, const ckks::CkksContext &ctx, ckks::KSwitchKey &key) {
    expect_tag(r, Tag::KSwitchKey, "wire: expected KSwitchKey");
    const uint64_t count = r.u64();
    check(count == ctx.max_level(), "wire: bad key-switch key count");
    key.keys.clear();
    key.keys.resize(count);
    for (auto &ct : key.keys) {
        load_ciphertext_body(r, ctx, ct, /*key_base=*/true);
    }
}

void save(Writer &w, const ckks::RelinKeys &keys) {
    w.u8(static_cast<uint8_t>(Tag::RelinKeys));
    save(w, keys.key);
}

void load(Reader &r, const ckks::CkksContext &ctx, ckks::RelinKeys &keys) {
    expect_tag(r, Tag::RelinKeys, "wire: expected RelinKeys");
    load(r, ctx, keys.key);
}

void save(Writer &w, const ckks::GaloisKeys &keys) {
    w.u8(static_cast<uint8_t>(Tag::GaloisKeys));
    w.u64(keys.keys.size());
    for (const auto &[elt, key] : keys.keys) {
        w.u64(elt);
        save(w, key);
    }
}

void load(Reader &r, const ckks::CkksContext &ctx, ckks::GaloisKeys &keys) {
    expect_tag(r, Tag::GaloisKeys, "wire: expected GaloisKeys");
    const uint64_t count = r.u64();
    check(count <= 4 * ctx.n(), "wire: bad galois key count");
    keys.keys.clear();
    uint64_t previous = 0;
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t elt = r.u64();
        // Galois elements are odd residues mod 2N, and the map serializes
        // in strictly increasing order — anything else is corruption.
        check(elt % 2 == 1 && elt < 2 * ctx.n(), "wire: bad galois element");
        check(elt > previous, "wire: galois elements out of order");
        previous = elt;
        ckks::KSwitchKey key;
        load(r, ctx, key);
        keys.keys.emplace(elt, std::move(key));
    }
}

// ---------------------------------------------------------------------------
// Envelope-level helpers
// ---------------------------------------------------------------------------

util::Modulus load_modulus(std::span<const uint8_t> buffer) {
    return load_enveloped<util::Modulus>(buffer);
}

std::vector<util::Modulus> load_modulus_chain(
    std::span<const uint8_t> buffer) {
    return load_enveloped<std::vector<util::Modulus>>(buffer);
}

ckks::EncryptionParameters load_parameters(std::span<const uint8_t> buffer) {
    return load_enveloped<ckks::EncryptionParameters>(buffer);
}

ckks::Plaintext load_plaintext(std::span<const uint8_t> buffer,
                               const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::Plaintext>(buffer, ctx);
}

ckks::Ciphertext load_ciphertext(std::span<const uint8_t> buffer,
                                 const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::Ciphertext>(buffer, ctx);
}

ckks::SecretKey load_secret_key(std::span<const uint8_t> buffer,
                                const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::SecretKey>(buffer, ctx);
}

ckks::PublicKey load_public_key(std::span<const uint8_t> buffer,
                                const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::PublicKey>(buffer, ctx);
}

ckks::KSwitchKey load_kswitch_key(std::span<const uint8_t> buffer,
                                  const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::KSwitchKey>(buffer, ctx);
}

ckks::RelinKeys load_relin_keys(std::span<const uint8_t> buffer,
                                const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::RelinKeys>(buffer, ctx);
}

ckks::GaloisKeys load_galois_keys(std::span<const uint8_t> buffer,
                                  const ckks::CkksContext &ctx) {
    return load_enveloped<ckks::GaloisKeys>(buffer, ctx);
}

// ---------------------------------------------------------------------------
// Chunked streaming frames
// ---------------------------------------------------------------------------

std::vector<std::vector<uint8_t>> chunk_message(uint64_t stream_id,
                                                std::span<const uint8_t> body,
                                                std::size_t max_payload) {
    max_payload = std::min(std::max<std::size_t>(1, max_payload),
                           kMaxChunkPayload);
    check(body.size() <= kMaxStreamBytes, "wire: stream too large to chunk");
    std::vector<std::vector<uint8_t>> frames;
    const std::size_t count =
        body.empty() ? 1 : (body.size() + max_payload - 1) / max_payload;
    frames.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t offset = i * max_payload;
        const std::size_t len =
            std::min(max_payload, body.size() - offset);
        const bool last = i + 1 == count;
        Writer w;
        w.reserve(kChunkOverheadBytes + len);
        w.u32(kChunkMagic);
        w.u16(kVersion);
        w.u16(last ? 1 : 0);
        w.u64(stream_id);
        w.u32(static_cast<uint32_t>(i));
        w.u32(static_cast<uint32_t>(len));
        w.u64(offset);
        w.u64(body.size());
        w.bytes(body.subspan(offset, len));
        w.u64(detail::fnv1a64(w.buffer()));
        frames.push_back(w.take());
    }
    return frames;
}

ChunkView open_chunk(std::span<const uint8_t> frame) {
    check(frame.size() >= kChunkOverheadBytes,
          "wire: chunk frame shorter than header");
    // Checksum first: a frame that fails it is corrupt, and none of its
    // header fields can be trusted for a finer-grained diagnosis.
    Reader tail(frame.subspan(frame.size() - 8));
    check(tail.u64() ==
              detail::fnv1a64(frame.subspan(0, frame.size() - 8)),
          "wire: chunk checksum mismatch");
    Reader r(frame);
    check(r.u32() == kChunkMagic, "wire: bad chunk magic");
    check(r.u16() == kVersion, "wire: unsupported chunk version");
    const uint16_t flags = r.u16();
    check(flags <= 1, "wire: bad chunk flags");
    ChunkView view;
    view.last = flags != 0;
    view.stream_id = r.u64();
    view.seq = r.u32();
    const uint32_t payload_len = r.u32();
    view.offset = r.u64();
    view.total_len = r.u64();
    check(payload_len <= kMaxChunkPayload, "wire: oversized chunk payload");
    check(frame.size() == kChunkOverheadBytes + payload_len,
          "wire: chunk frame length mismatch");
    check(view.total_len <= kMaxStreamBytes, "wire: oversized stream");
    // Ordered so the additions below cannot overflow: total_len is bounded
    // first, then offset is bounded by it.
    check(view.offset <= view.total_len, "wire: chunk offset out of range");
    check(view.offset + payload_len <= view.total_len,
          "wire: chunk overruns stream");
    check(view.last == (view.offset + payload_len == view.total_len),
          "wire: chunk last flag inconsistent with stream length");
    view.payload = r.bytes(payload_len);
    return view;
}

}  // namespace xehe::wire
