// Versioned, endian-stable binary wire format for the CKKS scheme objects
// that cross a process boundary in the serving pipeline: modulus chains,
// encryption parameters, plaintexts, ciphertexts and the three key types.
//
// Layout: every top-level object travels in an envelope
//
//   u32 magic "XEHE" | u16 version | u16 reserved | u64 payload_len |
//   payload (tagged body) | u64 FNV-1a(payload)
//
// with all integers little-endian regardless of host byte order.  The
// trailing checksum plus strict bounds/validity checks on every field mean
// a truncated or bit-flipped buffer is rejected with a typed WireError —
// deserialization never reads out of bounds and never constructs an
// object that violates the scheme's invariants.
//
// Seed compression: the uniform `a` component (poly 1) of fresh keys and
// symmetric ciphertexts is replaced on the wire by the 8-byte PRNG seed it
// was expanded from (util::expand_uniform_seeded) and regenerated on load,
// roughly halving the wire size of every fresh key and ciphertext.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckks/keys.h"

namespace xehe::wire {

/// Typed deserialization failure: truncation, bad magic/version/tag,
/// checksum mismatch, or a structurally invalid field.
class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string &what) : std::runtime_error(what) {}
};

inline constexpr uint32_t kMagic = 0x45484558u;  ///< "XEHE", little-endian
/// Version 4: adds the per-request backend-selection hint of
/// serve::Request.  (Version 3 added the typed status code of
/// serve::Response and the chunked streaming frames (kChunkMagic) that
/// carry large requests as bounded, checksummed segments; version 2 the
/// Program payload and the program field of serve::Request.)  Loads
/// reject other versions.
inline constexpr uint16_t kVersion = 4;
/// Envelope header: magic + version + reserved + payload length.
inline constexpr std::size_t kHeaderBytes = 16;
/// Envelope overhead: 16-byte header + 8-byte payload checksum.
inline constexpr std::size_t kEnvelopeBytes = 24;

enum class Tag : uint8_t {
    Modulus = 1,
    ModulusChain = 2,
    Parameters = 3,
    Plaintext = 4,
    Ciphertext = 5,
    SecretKey = 6,
    PublicKey = 7,
    KSwitchKey = 8,
    RelinKeys = 9,
    GaloisKeys = 10,
    // 11/12 are reserved for serve::Request / serve::Response.
    Request = 11,
    Response = 12,
    // 13 is the he:: circuit IR (save/load live in src/he/program.cpp).
    Program = 13,
};

/// Little-endian byte sink.  The sizing() variant only counts, which is
/// how serialized_bytes gets exact numbers without allocating.
class Writer {
public:
    Writer() = default;
    static Writer sizing() {
        Writer w;
        w.counting_ = true;
        return w;
    }

    void u8(uint8_t v);
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);
    void words(std::span<const uint64_t> v);
    void bytes(std::span<const uint8_t> v);
    /// Overwrites 8 already-written bytes at `offset` (envelope length
    /// back-patching).  Not available on a sizing writer.
    void patch_u64(std::size_t offset, uint64_t v);

    std::size_t size() const noexcept {
        return counting_ ? count_ : buf_.size();
    }
    bool counting() const noexcept { return counting_; }
    void reserve(std::size_t n) { buf_.reserve(n); }
    const std::vector<uint8_t> &buffer() const noexcept { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

private:
    std::vector<uint8_t> buf_;
    std::size_t count_ = 0;
    bool counting_ = false;
};

/// Bounds-checked little-endian cursor over a byte buffer.  Every read
/// throws WireError instead of walking past the end.
class Reader {
public:
    explicit Reader(std::span<const uint8_t> data) : data_(data) {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    double f64();
    void words(std::span<uint64_t> out);
    std::span<const uint8_t> bytes(std::size_t count);

    std::size_t remaining() const noexcept { return data_.size() - pos_; }
    bool done() const noexcept { return pos_ == data_.size(); }

private:
    void need(std::size_t count) const;

    std::span<const uint8_t> data_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Body-level save/load: tagged object bodies without the envelope, used
// directly when nesting objects inside a larger message (keys inside a
// GaloisKeys map, ciphertexts inside a serve::Request).
// ---------------------------------------------------------------------------

void save(Writer &w, const util::Modulus &m);
void save(Writer &w, const std::vector<util::Modulus> &chain);
void save(Writer &w, const ckks::EncryptionParameters &params);
void save(Writer &w, const ckks::Plaintext &plain);
void save(Writer &w, const ckks::Ciphertext &ct);
void save(Writer &w, const ckks::SecretKey &sk);
void save(Writer &w, const ckks::PublicKey &pk);
void save(Writer &w, const ckks::KSwitchKey &key);
void save(Writer &w, const ckks::RelinKeys &keys);
void save(Writer &w, const ckks::GaloisKeys &keys);

void load(Reader &r, util::Modulus &m);
void load(Reader &r, std::vector<util::Modulus> &chain);
void load(Reader &r, ckks::EncryptionParameters &params);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::Plaintext &plain);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::Ciphertext &ct);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::SecretKey &sk);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::PublicKey &pk);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::KSwitchKey &key);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::RelinKeys &keys);
void load(Reader &r, const ckks::CkksContext &ctx, ckks::GaloisKeys &keys);

// ---------------------------------------------------------------------------
// Envelope level: the framing clients and servers exchange.
// ---------------------------------------------------------------------------

namespace detail {
uint64_t fnv1a64(std::span<const uint8_t> data);
/// Validates magic/version/length/checksum; returns the payload view.
std::span<const uint8_t> open_envelope(std::span<const uint8_t> buffer);
}  // namespace detail

/// Exact size in bytes of serialize(obj), without serializing.
template <typename T>
std::size_t serialized_bytes(const T &obj) {
    Writer w = Writer::sizing();
    save(w, obj);
    return kEnvelopeBytes + w.size();
}

/// Opens the envelope, loads one body through the save/load overload set
/// (found by ADL, so other modules' message types work too), and rejects
/// trailing payload bytes.
template <typename T, typename... Ctx>
T load_enveloped(std::span<const uint8_t> buffer, const Ctx &...ctx) {
    Reader r(detail::open_envelope(buffer));
    T out;
    load(r, ctx..., out);
    if (!r.done()) {
        throw WireError("wire: trailing bytes in payload");
    }
    return out;
}

/// Serializes `obj` into a self-contained enveloped buffer.  The body is
/// written straight into the (exactly reserved) envelope buffer; the
/// payload length is back-patched and the checksum appended, so there is
/// no second copy of the payload.
template <typename T>
std::vector<uint8_t> serialize(const T &obj) {
    Writer w;
    w.reserve(serialized_bytes(obj));
    w.u32(kMagic);
    w.u16(kVersion);
    w.u16(0);  // reserved
    w.u64(0);  // payload length, patched once the body is written
    save(w, obj);
    w.patch_u64(8, w.size() - kHeaderBytes);
    w.u64(detail::fnv1a64(
        std::span<const uint8_t>(w.buffer()).subspan(kHeaderBytes)));
    return w.take();
}

// ---------------------------------------------------------------------------
// Chunked streaming frames: one logical message (a stream) travels as a
// sequence of bounded, individually checksummed chunk frames, so a large
// ciphertext batch never has to exist as one monolithic validated buffer
// on the receiving side.  Each frame is self-contained:
//
//   u32 chunk magic "XEHC" | u16 version | u16 flags (bit 0: last chunk) |
//   u64 stream_id | u32 seq | u32 payload_len | u64 offset | u64 total_len |
//   payload | u64 FNV-1a(frame minus checksum)
//
// Receivers validate magic/version/bounds/continuity per frame and feed
// the payload straight to an incremental parser; corruption is caught at
// chunk granularity instead of after buffering the whole message.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kChunkMagic = 0x43484558u;  ///< "XEHC"
/// Largest payload one chunk frame may carry; the receive-side buffering
/// bound of the streaming path.
inline constexpr std::size_t kMaxChunkPayload = 64 * 1024;
/// Largest total stream length a receiver will accept (256 MiB).
inline constexpr uint64_t kMaxStreamBytes = uint64_t{1} << 28;
/// Fixed frame overhead: the 40-byte header (magic u32, version u16,
/// flags u16, stream_id u64, seq u32, payload_len u32, offset u64,
/// total_len u64) plus the trailing 8-byte FNV-1a checksum.
inline constexpr std::size_t kChunkHeaderBytes = 40;
inline constexpr std::size_t kChunkOverheadBytes = kChunkHeaderBytes + 8;

/// Validated view into one chunk frame; `payload` aliases the frame bytes.
struct ChunkView {
    uint64_t stream_id = 0;
    uint32_t seq = 0;
    bool last = false;
    uint64_t offset = 0;     ///< byte offset of payload within the stream
    uint64_t total_len = 0;  ///< total stream length in bytes
    std::span<const uint8_t> payload;
};

/// Slices `body` into checksummed chunk frames for `stream_id`.  Every
/// frame's payload is at most `max_payload` (clamped to kMaxChunkPayload);
/// an empty body yields one empty last-marked frame.
std::vector<std::vector<uint8_t>> chunk_message(
    uint64_t stream_id, std::span<const uint8_t> body,
    std::size_t max_payload = kMaxChunkPayload);

/// Validates one chunk frame (magic, version, bounds, checksum) and
/// returns a view of its header fields and payload.  Throws WireError.
ChunkView open_chunk(std::span<const uint8_t> frame);

util::Modulus load_modulus(std::span<const uint8_t> buffer);
std::vector<util::Modulus> load_modulus_chain(std::span<const uint8_t> buffer);
ckks::EncryptionParameters load_parameters(std::span<const uint8_t> buffer);
ckks::Plaintext load_plaintext(std::span<const uint8_t> buffer,
                               const ckks::CkksContext &ctx);
ckks::Ciphertext load_ciphertext(std::span<const uint8_t> buffer,
                                 const ckks::CkksContext &ctx);
ckks::SecretKey load_secret_key(std::span<const uint8_t> buffer,
                                const ckks::CkksContext &ctx);
ckks::PublicKey load_public_key(std::span<const uint8_t> buffer,
                                const ckks::CkksContext &ctx);
ckks::KSwitchKey load_kswitch_key(std::span<const uint8_t> buffer,
                                  const ckks::CkksContext &ctx);
ckks::RelinKeys load_relin_keys(std::span<const uint8_t> buffer,
                                const ckks::CkksContext &ctx);
ckks::GaloisKeys load_galois_keys(std::span<const uint8_t> buffer,
                                  const ckks::CkksContext &ctx);

}  // namespace xehe::wire
