// Multi-tile batched serving: many concurrent sessions, each running the
// Section IV-C routine mix plus matmul-tile accumulations, scheduled
// through the event-based multi-queue scheduler on the dual-tile Device1.
// Compares the single-queue baseline against per-tile queues and reports
// the simulated serving throughput and speedup; also runs the encrypted
// matmul with round-robined output tiles (Section IV-E on two tiles).
//
// `--json <path>` writes the deterministic simulated metrics in a
// google-benchmark-compatible layout; CI's bench-smoke job diffs that
// file against bench/baseline.json to catch cost-model regressions.
// N = 32K, L = 8, cost-only (the paper's operating point).
#include <cstring>

#include "bench_common.h"
#include "xehe/evaluator_pool.h"
#include "xehe/matmul.h"

int main(int argc, char **argv) {
    using namespace bench;
    using xehe::core::BatchReport;
    using xehe::core::BatchWorkload;
    using xehe::core::GpuOptions;
    using xehe::core::MatmulConfig;
    using xehe::core::run_batch_serving;
    using xehe::core::run_encrypted_matmul;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device1();

    GpuOptions opts;
    opts.isa = IsaMode::InlineAsm;

    BatchWorkload workload;
    workload.sessions = 8;
    workload.rounds = 1;
    workload.matmul_tiles = 2;
    workload.functional = false;

    std::vector<bench::JsonMetric> metrics;

    // --- batched serving: 1 queue vs one queue per tile -----------------
    print_header("Batched multi-tile serving on Device1",
                 "Figs. 2 and 16-18, Section III-D");
    std::printf("%8s%10s%14s%12s%14s%12s\n", "queues", "ops", "makespan",
                "busy", "throughput", "efficiency");
    std::printf("%8s%10s%14s%12s%14s%12s\n", "", "", "(ms)", "(ms)", "(ops/s)",
                "");
    BatchReport reports[2];
    const int queue_counts[2] = {1, 0};  // 0 = one queue per tile
    for (int i = 0; i < 2; ++i) {
        reports[i] =
            run_batch_serving(host, spec, opts, workload, queue_counts[i]);
        const auto &r = reports[i];
        std::printf("%8zu%10zu%14.3f%12.3f%14.0f%11.0f%%\n", r.queues, r.ops,
                    r.makespan_ms, r.busy_ms, r.throughput_ops_per_s(),
                    100.0 * r.parallel_efficiency());
        metrics.push_back({"batch_serving/q" + std::to_string(r.queues) +
                               "/makespan_ms",
                           r.makespan_ms, "ms"});
        metrics.push_back({"batch_serving/q" + std::to_string(r.queues) +
                               "/kernel_ms",
                           r.kernel_ms, "ms"});
    }
    const double serving_speedup =
        reports[0].makespan_ms / reports[1].makespan_ms;
    std::printf("\nmulti-tile serving speedup: %.2fx "
                "(aggregate kernel time invariant: %.3f vs %.3f ms)\n",
                serving_speedup, reports[0].kernel_ms, reports[1].kernel_ms);
    metrics.push_back(
        {"batch_serving/multitile_speedup", serving_speedup, "x"});

    // --- per-routine single-session profile (regression anchors) --------
    {
        xehe::core::RoutineBench single(host, spec, opts, /*functional=*/false);
        for (const auto routine : xehe::core::kAllRoutines) {
            const auto p = single.run(routine);
            metrics.push_back({std::string("routine/") +
                                   xehe::core::routine_name(routine) +
                                   "/total_ms",
                               p.total_ms(), "ms"});
        }
    }

    // --- encrypted matmul with round-robined output tiles ---------------
    print_header("Encrypted matmul, output tiles across queues",
                 "Fig. 19 on two tiles");
    std::printf("%8s%14s%12s\n", "queues", "makespan(ms)", "busy(ms)");
    MatmulConfig mm;
    mm.device = spec;
    mm.gpu = opts;
    mm.functional = false;
    double matmul_ms[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
        mm.queues = queue_counts[i];
        const auto report = run_encrypted_matmul(mm);
        matmul_ms[i] = report.sim_total_ms;
        std::printf("%8zu%14.3f%12.3f\n", report.queues, report.sim_total_ms,
                    report.sim_busy_ms);
        metrics.push_back({"matmul/q" + std::to_string(report.queues) +
                               "/total_ms",
                           report.sim_total_ms, "ms"});
    }
    const double matmul_speedup = matmul_ms[0] / matmul_ms[1];
    std::printf("\nmulti-tile matmul speedup: %.2fx\n", matmul_speedup);
    metrics.push_back({"matmul/multitile_speedup", matmul_speedup, "x"});

    if (!json_path.empty()) {
        if (!bench::write_json(json_path, metrics, "fig_multitile_batch",
                               spec.name.c_str())) {
            return 2;
        }
        std::printf("\nwrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }
    return serving_speedup >= 1.5 ? 0 : 1;
}
