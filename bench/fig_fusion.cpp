// Dyadic-kernel fusion ablation: every Section IV-C routine with the
// fusion layer off vs on (GpuOptions::fuse_dyadic), on both synthetic
// devices.  Fusion merges the non-NTT element-wise chains into one launch
// per RNS limb group — fewer launch overheads, merged byte traffic, and
// better occupancy for the sub-saturated per-limb kernels — while the NTT
// kernel structure and every ciphertext bit stay identical
// (tests/test_fusion.cpp proves the latter differentially).
//
// The operating point (N = 1K, L = 8) is the launch-bound end of the
// paper's parameter range, where per-limb kernel counts dominate; at the
// N = 32K roofline point fusion still removes the same launches but the
// NTT share grows, so the headline is reported here.
//
// `--json <path>` writes the deterministic simulated metrics; CI diffs
// them against bench/baseline.json next to the fig_multitile_batch
// metrics.  Exits non-zero unless every device shows >= 1.3x total-time
// speedup on at least one routine.
#include <cstring>

#include "bench_common.h"

int main(int argc, char **argv) {
    using namespace bench;
    using xehe::core::GpuOptions;
    using xehe::core::RoutineBench;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(1024, 8));

    std::vector<JsonMetric> metrics;
    bool all_devices_pass = true;

    for (const DeviceSpec &spec : {xehe::xgpu::device1(),
                                   xehe::xgpu::device2()}) {
        print_header(("Dyadic-kernel fusion on " + spec.name).c_str(),
                     "the launch/traffic costs of Figs. 5, 16 and 18");
        std::printf("%-20s%14s%14s%10s%12s%12s\n", "routine", "unfused(ms)",
                    "fused(ms)", "speedup", "launches", "fused");
        double best = 0.0;
        for (const auto routine : xehe::core::kAllRoutines) {
            const char *name = xehe::core::routine_name(routine);
            double total_ms[2] = {0.0, 0.0};
            std::size_t submissions[2] = {0, 0};
            for (int fused = 0; fused < 2; ++fused) {
                GpuOptions opts;
                opts.isa = IsaMode::InlineAsm;
                opts.fuse_dyadic = fused == 1;
                RoutineBench bench(host, spec, opts, /*functional=*/false);
                const auto profile = bench.run(routine);
                total_ms[fused] = profile.total_ms();
                submissions[fused] =
                    bench.gpu().queue().profiler().submissions();
            }
            const double speedup = total_ms[0] / total_ms[1];
            best = std::max(best, speedup);
            std::printf("%-20s%14.3f%14.3f%9.2fx%12zu%12zu\n", name,
                        total_ms[0], total_ms[1], speedup, submissions[0],
                        submissions[1]);
            const std::string prefix =
                "fusion/" + spec.name + "/" + name + "/";
            metrics.push_back({prefix + "unfused_ms", total_ms[0], "ms"});
            metrics.push_back({prefix + "fused_ms", total_ms[1], "ms"});
            // The "_speedup" suffix is compare_baseline.py's
            // higher-is-better marker.
            metrics.push_back({prefix + "fused_speedup", speedup, "x"});
        }
        std::printf("\nbest fused-vs-unfused speedup on %s: %.2fx\n",
                    spec.name.c_str(), best);
        if (best < 1.3) {
            all_devices_pass = false;
        }
    }

    if (!json_path.empty()) {
        if (!write_json(json_path, metrics, "fig_fusion", "Device1+Device2")) {
            return 2;
        }
        std::printf("\nwrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }
    return all_devices_pass ? 0 : 1;
}
