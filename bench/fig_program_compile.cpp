// Program-compiler ablation: raw node-by-node interpretation vs
// he::ProgramCompiler output on Device1, cost-only at the paper's
// N = 32K / L = 8 operating point.  Three suites:
//
//  - redundant: a circuit that over-mod-switches both add operands,
//    duplicates subexpressions and carries dead nodes — the planner must
//    strip the over-switching (strictly fewer levels consumed) while CSE
//    and DCE erase the redundant work.
//  - deep: duplicated square -> relinearize -> rescale towers — CSE
//    collapses the clone, so compiled interpretation must be >= 1.1x
//    faster end-to-end on the simulated timeline.
//  - routines: the five Section IV-C canonical programs, already in
//    compiled normal form — the compile step must not regress them.
//
// `--json <path>` writes the deterministic simulated metrics; CI's
// bench-smoke job merges them into the baseline gate.  Exits non-zero if
// any suite misses its gate.
#include <cstring>

#include "bench_common.h"
#include "he/compiler.h"

namespace {

using xehe::he::Program;
using xehe::he::ProgramBuilder;

/// Over-switched adds + duplicate subexpressions + a dead tower.
Program redundant_program() {
    ProgramBuilder b(2);
    const auto a0 = b.input(0);
    const auto a1 = b.input(1);
    // Dead tower: DCE must drop all three nodes.
    b.rescale(b.relinearize(b.square(a1)));
    // Duplicate subexpression: CSE merges the negates.
    const auto x = b.mod_switch(b.mod_switch(b.negate(a0)));
    const auto y = b.mod_switch(b.mod_switch(a1));
    const auto s = b.add(x, y);
    b.output(b.add(s, b.mod_switch(b.mod_switch(b.negate(a0)))));
    return b.build();
}

/// Two identical square/relin/rescale towers, three products deep.
Program deep_program() {
    ProgramBuilder b(1);
    auto t1 = b.input(0);
    auto t2 = b.input(0);
    for (int stage = 0; stage < 3; ++stage) {
        t1 = b.rescale(b.relinearize(b.square(t1)));
        t2 = b.rescale(b.relinearize(b.square(t2)));
    }
    b.output(b.add(t1, t2));
    return b.build();
}

}  // namespace

int main(int argc, char **argv) {
    using namespace bench;
    namespace he = xehe::he;
    namespace core = xehe::core;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device1();
    core::GpuOptions opts;
    opts.isa = IsaMode::InlineAsm;
    core::GpuContext gpu(host, spec, opts);
    gpu.set_functional(false);
    const core::GpuEvaluator evaluator(gpu);
    he::GpuBackend backend(gpu, evaluator);

    xehe::ckks::KeyGenerator keygen(host, 99);
    const auto relin = keygen.create_relin_keys();
    const int steps[] = {1};
    const auto galois = keygen.create_galois_keys(steps);
    he::ProgramKeys keys;
    keys.relin = &relin;
    keys.galois = &galois;

    // Cost-only inputs at the planner's default operating point: the
    // session scale (last data prime), context max level.
    const double scale = static_cast<double>(
        host.key_modulus()[host.max_level() - 1].value());
    std::vector<core::GpuCiphertext> slots;
    slots.reserve(3);
    std::vector<he::Cipher> inputs;
    for (int i = 0; i < 3; ++i) {
        slots.push_back(core::allocate_ciphertext(gpu, 2, host.max_level(),
                                                  scale));
        inputs.push_back(backend.wrap(slots.back()));
    }

    const auto run_ms = [&](const Program &program,
                            std::size_t num_inputs) {
        auto &profiler = gpu.queue().profiler();
        const double t0 = profiler.total_ns();
        he::run_program(program, backend,
                        std::span<const he::Cipher>(inputs).first(num_inputs),
                        keys);
        return (profiler.total_ns() - t0) * 1e-6;
    };

    he::CompilerOptions copts;
    copts.input_scale = scale;
    const he::ProgramCompiler compiler(host, copts);

    print_header("Program compiler: optimized vs raw interpretation",
                 "the he::ProgramCompiler pipeline on synthetic circuits "
                 "and the Section IV-C routines");
    std::printf("%-18s%8s%8s%10s%10s%10s%10s%10s\n", "suite", "nodes",
                "nodes'", "levels", "levels'", "raw(ms)", "opt(ms)",
                "speedup");

    std::vector<JsonMetric> metrics;
    bool ok = true;

    // --- redundancy suite: the levels gate -----------------------------
    {
        const Program raw = redundant_program();
        const auto compiled = compiler.compile(raw);
        const auto before = raw.stats();
        const auto after = compiled.program.stats();
        const double raw_ms = run_ms(raw, raw.num_inputs);
        const double opt_ms =
            run_ms(compiled.program, compiled.program.num_inputs);
        const double speedup = raw_ms / opt_ms;
        std::printf("%-18s%8zu%8zu%10zu%10zu%10.3f%10.3f%9.2fx\n",
                    "redundant", before.nodes, after.nodes,
                    before.levels_consumed, after.levels_consumed, raw_ms,
                    opt_ms, speedup);
        metrics.push_back({"program_compile/redundant/raw_ms", raw_ms, "ms"});
        metrics.push_back({"program_compile/redundant/opt_ms", opt_ms, "ms"});
        metrics.push_back({"program_compile/redundant/time_speedup", speedup,
                           "x"});
        metrics.push_back(
            {"program_compile/redundant/levels_consumed",
             static_cast<double>(after.levels_consumed), "levels"});
        if (after.levels_consumed >= before.levels_consumed) {
            std::fprintf(stderr,
                         "gate: redundancy suite must consume strictly "
                         "fewer levels (%zu -> %zu)\n",
                         before.levels_consumed, after.levels_consumed);
            ok = false;
        }
    }

    // --- deep suite: the end-to-end time gate --------------------------
    {
        const Program raw = deep_program();
        const auto compiled = compiler.compile(raw);
        const auto before = raw.stats();
        const auto after = compiled.program.stats();
        const double raw_ms = run_ms(raw, raw.num_inputs);
        const double opt_ms =
            run_ms(compiled.program, compiled.program.num_inputs);
        const double speedup = raw_ms / opt_ms;
        std::printf("%-18s%8zu%8zu%10zu%10zu%10.3f%10.3f%9.2fx\n", "deep",
                    before.nodes, after.nodes, before.levels_consumed,
                    after.levels_consumed, raw_ms, opt_ms, speedup);
        metrics.push_back({"program_compile/deep/raw_ms", raw_ms, "ms"});
        metrics.push_back({"program_compile/deep/opt_ms", opt_ms, "ms"});
        metrics.push_back({"program_compile/deep/time_speedup", speedup,
                           "x"});
        if (speedup < 1.1) {
            std::fprintf(stderr,
                         "gate: deep suite speedup %.3fx below 1.1x\n",
                         speedup);
            ok = false;
        }
    }

    // --- routine suite: the no-regression gate -------------------------
    for (const core::Routine r : core::kAllRoutines) {
        const Program &raw = core::routine_program(r);
        const Program &opt = core::routine_program_compiled(r);
        const auto before = raw.stats();
        const auto after = opt.stats();
        const double raw_ms = run_ms(raw, raw.num_inputs);
        const double opt_ms = run_ms(opt, opt.num_inputs);
        const double ratio = raw_ms / opt_ms;
        std::printf("%-18s%8zu%8zu%10zu%10zu%10.3f%10.3f%9.2fx\n",
                    core::routine_name(r), before.nodes, after.nodes,
                    before.levels_consumed, after.levels_consumed, raw_ms,
                    opt_ms, ratio);
        metrics.push_back({std::string("program_compile/routine/") +
                               core::routine_name(r) + "_speedup",
                           ratio, "x"});
        if (ratio < 0.995) {
            std::fprintf(stderr,
                         "gate: routine %s regressed to %.3fx under "
                         "compilation\n",
                         core::routine_name(r), ratio);
            ok = false;
        }
    }

    std::printf("\ngates: redundant levels strictly fewer; deep >= 1.1x; "
                "routines >= 0.995x — %s\n",
                ok ? "all hold" : "FAILED");

    if (!json_path.empty()) {
        if (!write_json(json_path, metrics, "fig_program_compile",
                        spec.name.c_str())) {
            return 2;
        }
        std::printf("wrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }
    return ok ? 0 : 1;
}
