// Program-compiler ablation: raw node-by-node interpretation vs
// he::ProgramCompiler output on Device1, cost-only at the paper's
// N = 32K / L = 8 operating point.  Three suites:
//
//  - redundant: a circuit that over-mod-switches both add operands,
//    duplicates subexpressions and carries dead nodes — the planner must
//    strip the over-switching (strictly fewer levels consumed) while CSE
//    and DCE erase the redundant work.
//  - deep: duplicated square -> relinearize -> rescale towers — CSE
//    collapses the clone, so compiled interpretation must be >= 1.1x
//    faster end-to-end on the simulated timeline.
//  - routines: the five Section IV-C canonical programs, already in
//    compiled normal form — the compile step must not regress them.
//
// `--json <path>` writes the deterministic simulated metrics; CI's
// bench-smoke job merges them into the baseline gate.  Exits non-zero if
// any suite misses its gate.
#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "he/analyze.h"
#include "he/compiler.h"
#include "wire/wire.h"

namespace {

using xehe::he::Program;
using xehe::he::ProgramBuilder;

/// Over-switched adds + duplicate subexpressions + a dead tower.
Program redundant_program() {
    ProgramBuilder b(2);
    const auto a0 = b.input(0);
    const auto a1 = b.input(1);
    // Dead tower: DCE must drop all three nodes.
    b.rescale(b.relinearize(b.square(a1)));
    // Duplicate subexpression: CSE merges the negates.
    const auto x = b.mod_switch(b.mod_switch(b.negate(a0)));
    const auto y = b.mod_switch(b.mod_switch(a1));
    const auto s = b.add(x, y);
    b.output(b.add(s, b.mod_switch(b.mod_switch(b.negate(a0)))));
    return b.build();
}

/// Two identical square/relin/rescale towers, three products deep.
Program deep_program() {
    ProgramBuilder b(1);
    auto t1 = b.input(0);
    auto t2 = b.input(0);
    for (int stage = 0; stage < 3; ++stage) {
        t1 = b.rescale(b.relinearize(b.square(t1)));
        t2 = b.rescale(b.relinearize(b.square(t2)));
    }
    b.output(b.add(t1, t2));
    return b.build();
}

/// Deterministic deep pseudo-random circuit, the shape of the test
/// suite's fuzz DAGs sized up: parallel square/relinearize/rescale
/// towers with rotates and cross-tower adds mixed in (~150-200 nodes).
/// Aligned (`misalign = false`): every tower sees the same scale
/// evolution, so adds at equal stage counts are exactly legal and the
/// planner only has CSE/DCE-shaped work.  Misaligned: towers randomly
/// take extra mod-switches, so cross-tower adds sit at unequal levels
/// and the planner must run real repair episodes — the shape of
/// client-built circuits that compile-on-admit actually sees.
Program deep_fuzz_program(uint64_t seed, bool misalign) {
    std::mt19937_64 rng(seed);
    constexpr std::size_t kTowers = 8;
    const int stages = misalign ? 5 : 6;
    ProgramBuilder b(2);
    std::vector<ProgramBuilder::Value> towers;
    for (std::size_t t = 0; t < kTowers; ++t) {
        towers.push_back(b.input(t % 2));
    }
    for (int stage = 0; stage < stages; ++stage) {
        for (auto &t : towers) {
            t = b.rescale(b.relinearize(b.square(t)));
            if (rng() % 3 == 0) {
                t = b.rotate(t, 1);
            }
            if (misalign && rng() % 4 == 0) {
                t = b.mod_switch(t);
            }
        }
        if (rng() % 2 == 0) {
            const std::size_t i = rng() % kTowers;
            const std::size_t j = rng() % kTowers;
            towers[i] = b.add(towers[i], towers[j]);
        }
    }
    auto acc = towers[0];
    for (std::size_t t = 1; t < kTowers; ++t) {
        acc = b.add(acc, towers[t]);
    }
    b.output(acc);
    return b.build();
}

}  // namespace

int main(int argc, char **argv) {
    using namespace bench;
    namespace he = xehe::he;
    namespace core = xehe::core;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device1();
    core::GpuOptions opts;
    opts.isa = IsaMode::InlineAsm;
    core::GpuContext gpu(host, spec, opts);
    gpu.set_functional(false);
    const core::GpuEvaluator evaluator(gpu);
    he::GpuBackend backend(gpu, evaluator);

    xehe::ckks::KeyGenerator keygen(host, 99);
    const auto relin = keygen.create_relin_keys();
    const int steps[] = {1};
    const auto galois = keygen.create_galois_keys(steps);
    he::ProgramKeys keys;
    keys.relin = &relin;
    keys.galois = &galois;

    // Cost-only inputs at the planner's default operating point: the
    // session scale (last data prime), context max level.
    const double scale = static_cast<double>(
        host.key_modulus()[host.max_level() - 1].value());
    std::vector<core::GpuCiphertext> slots;
    slots.reserve(3);
    std::vector<he::Cipher> inputs;
    for (int i = 0; i < 3; ++i) {
        slots.push_back(core::allocate_ciphertext(gpu, 2, host.max_level(),
                                                  scale));
        inputs.push_back(backend.wrap(slots.back()));
    }

    const auto run_ms = [&](const Program &program,
                            std::size_t num_inputs) {
        auto &profiler = gpu.queue().profiler();
        const double t0 = profiler.total_ns();
        he::run_program(program, backend,
                        std::span<const he::Cipher>(inputs).first(num_inputs),
                        keys);
        return (profiler.total_ns() - t0) * 1e-6;
    };

    he::CompilerOptions copts;
    copts.input_scale = scale;
    const he::ProgramCompiler compiler(host, copts);

    print_header("Program compiler: optimized vs raw interpretation",
                 "the he::ProgramCompiler pipeline on synthetic circuits "
                 "and the Section IV-C routines");
    std::printf("%-18s%8s%8s%10s%10s%10s%10s%10s\n", "suite", "nodes",
                "nodes'", "levels", "levels'", "raw(ms)", "opt(ms)",
                "speedup");

    std::vector<JsonMetric> metrics;
    bool ok = true;

    // --- redundancy suite: the levels gate -----------------------------
    {
        const Program raw = redundant_program();
        const auto compiled = compiler.compile(raw);
        const auto before = raw.stats();
        const auto after = compiled.program.stats();
        const double raw_ms = run_ms(raw, raw.num_inputs);
        const double opt_ms =
            run_ms(compiled.program, compiled.program.num_inputs);
        const double speedup = raw_ms / opt_ms;
        std::printf("%-18s%8zu%8zu%10zu%10zu%10.3f%10.3f%9.2fx\n",
                    "redundant", before.nodes, after.nodes,
                    before.levels_consumed, after.levels_consumed, raw_ms,
                    opt_ms, speedup);
        metrics.push_back({"program_compile/redundant/raw_ms", raw_ms, "ms"});
        metrics.push_back({"program_compile/redundant/opt_ms", opt_ms, "ms"});
        metrics.push_back({"program_compile/redundant/time_speedup", speedup,
                           "x"});
        metrics.push_back(
            {"program_compile/redundant/levels_consumed",
             static_cast<double>(after.levels_consumed), "levels"});
        if (after.levels_consumed >= before.levels_consumed) {
            std::fprintf(stderr,
                         "gate: redundancy suite must consume strictly "
                         "fewer levels (%zu -> %zu)\n",
                         before.levels_consumed, after.levels_consumed);
            ok = false;
        }
    }

    // --- deep suite: the end-to-end time gate --------------------------
    {
        const Program raw = deep_program();
        const auto compiled = compiler.compile(raw);
        const auto before = raw.stats();
        const auto after = compiled.program.stats();
        const double raw_ms = run_ms(raw, raw.num_inputs);
        const double opt_ms =
            run_ms(compiled.program, compiled.program.num_inputs);
        const double speedup = raw_ms / opt_ms;
        std::printf("%-18s%8zu%8zu%10zu%10zu%10.3f%10.3f%9.2fx\n", "deep",
                    before.nodes, after.nodes, before.levels_consumed,
                    after.levels_consumed, raw_ms, opt_ms, speedup);
        metrics.push_back({"program_compile/deep/raw_ms", raw_ms, "ms"});
        metrics.push_back({"program_compile/deep/opt_ms", opt_ms, "ms"});
        metrics.push_back({"program_compile/deep/time_speedup", speedup,
                           "x"});
        if (speedup < 1.1) {
            std::fprintf(stderr,
                         "gate: deep suite speedup %.3fx below 1.1x\n",
                         speedup);
            ok = false;
        }
    }

    // --- routine suite: the no-regression gate -------------------------
    for (const core::Routine r : core::kAllRoutines) {
        const Program &raw = core::routine_program(r);
        const Program &opt = core::routine_program_compiled(r);
        const auto before = raw.stats();
        const auto after = opt.stats();
        const double raw_ms = run_ms(raw, raw.num_inputs);
        const double opt_ms = run_ms(opt, opt.num_inputs);
        const double ratio = raw_ms / opt_ms;
        std::printf("%-18s%8zu%8zu%10zu%10zu%10.3f%10.3f%9.2fx\n",
                    core::routine_name(r), before.nodes, after.nodes,
                    before.levels_consumed, after.levels_consumed, raw_ms,
                    opt_ms, ratio);
        metrics.push_back({std::string("program_compile/routine/") +
                               core::routine_name(r) + "_speedup",
                           ratio, "x"});
        if (ratio < 0.995) {
            std::fprintf(stderr,
                         "gate: routine %s regressed to %.3fx under "
                         "compilation\n",
                         core::routine_name(r), ratio);
            ok = false;
        }
    }

    // --- analysis-cost suite: the admission-gate overhead --------------
    // The static verifier runs on every served program before the
    // compile-on-admit step, so its budget is relative to what a cache
    // miss already pays: wire decode (he::load_program) plus the
    // ProgramCompiler pipeline.  Both sides are host work (unlike the
    // simulated interpretation timings above), measured in wall-clock
    // over the five routines plus the deep synthetic circuits — aligned
    // and planner-repair-needing fuzz shapes — with the exact admission
    // analyzer configuration (alignment assumed, structural validation
    // already paid by the decode, no key facts: keys are per-session
    // state the front door does not hold).  Interleaved rounds with a
    // median gate keep a noisy host from flaking CI.
    {
        std::vector<Program> circuits;
        for (const core::Routine r : core::kAllRoutines) {
            circuits.push_back(core::routine_program(r));
        }
        circuits.push_back(redundant_program());
        circuits.push_back(deep_program());
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            circuits.push_back(deep_fuzz_program(seed, false));
        }
        for (uint64_t seed = 1; seed <= 2; ++seed) {
            circuits.push_back(deep_fuzz_program(seed, true));
        }
        std::vector<std::vector<uint8_t>> encoded;
        encoded.reserve(circuits.size());
        for (const Program &p : circuits) {
            encoded.push_back(xehe::wire::serialize(p));
        }

        he::AnalyzerOptions aopts;
        aopts.assume_alignment = true;
        aopts.assume_validated = true;  // the decode validates
        aopts.errors_only = true;       // the front door discards warnings
        const he::ProgramAnalyzer analyzer(host, aopts);
        // Admission facts, as InferenceServer::admit_program builds them:
        // the serving level is known, input sizes and scales are the
        // client's to choose, and no session keys are in scope.
        he::InputFacts facts;
        facts.level = host.max_level();
        // Every suite circuit must pass the front door, or the analyze
        // timings below measure the cost of rejecting, not admitting.
        for (std::size_t c = 0; c < circuits.size(); ++c) {
            const auto report = analyzer.analyze(circuits[c], facts);
            if (!report.ok()) {
                std::fprintf(stderr,
                             "gate: analysis suite circuit %zu rejected: "
                             "%s\n",
                             c, report.summary().c_str());
                ok = false;
            }
        }

        using clock = std::chrono::steady_clock;
        constexpr int kRounds = 5;
        constexpr int kIters = 40;
        double analyze_ms = 0.0;
        double compile_ms = 0.0;
        std::vector<double> round_pct;
        std::size_t sink = 0;
        // steady_clock::now() itself runs ~30 ns on shared runners, and
        // the analyze window is sub-microsecond on the small routines:
        // calibrate the timer's latency (a min is a lower bound, so the
        // correction can never overshoot) and charge it to neither side
        // of the ratio.
        double tick_ms = 1.0;
        for (int i = 0; i < 1000; ++i) {
            const auto t0 = clock::now();
            const auto t1 = clock::now();
            tick_ms = std::min(
                tick_ms,
                std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        for (int round = 0; round < kRounds; ++round) {
            // Timed exactly as a serving cache miss executes: decode,
            // then the admission analyze of the just-decoded program,
            // then the compiler pipeline, per request, cycling the
            // whole circuit mix.  The analyze span is carved out of
            // the middle, so both sides of the ratio share cache state
            // and any host-contention burst with the real front door.
            double a_ms = 0.0;
            double c_ms = 0.0;
            for (int i = 0; i < kIters; ++i) {
                for (const auto &bytes : encoded) {
                    const auto t0 = clock::now();
                    const Program p = he::load_program(bytes, host);
                    const auto t1 = clock::now();
                    sink += analyzer.analyze(p, facts).diagnostics.size();
                    const auto t2 = clock::now();
                    sink += compiler.compile(p).program.nodes.size();
                    const auto t3 = clock::now();
                    a_ms += std::chrono::duration<double, std::milli>(
                                t2 - t1)
                                .count() -
                            tick_ms;
                    c_ms += std::chrono::duration<double, std::milli>(
                                (t1 - t0) + (t3 - t2))
                                .count() -
                            2.0 * tick_ms;
                }
            }
            analyze_ms += a_ms;
            compile_ms += c_ms;
            round_pct.push_back(100.0 * a_ms / c_ms);
        }
        std::sort(round_pct.begin(), round_pct.end());
        const double pct = round_pct[round_pct.size() / 2];
        std::printf("\nanalysis cost: %.3f ms analyze vs %.3f ms "
                    "decode+compile over %zu circuits x %d iters x %d "
                    "rounds (median %.2f%%, sink %zu)\n",
                    analyze_ms, compile_ms, circuits.size(), kIters,
                    kRounds, pct, sink);
        metrics.push_back(
            {"program_compile/analysis/analyze_ms", analyze_ms, "ms"});
        metrics.push_back(
            {"program_compile/analysis/compile_ms", compile_ms, "ms"});
        metrics.push_back(
            {"program_compile/analysis/overhead_pct", pct, "%"});
        if (pct >= 5.0) {
            std::fprintf(stderr,
                         "gate: analysis overhead %.2f%% of the "
                         "compile-on-admit step (must stay < 5%%)\n",
                         pct);
            ok = false;
        }
    }

    std::printf("\ngates: redundant levels strictly fewer; deep >= 1.1x; "
                "routines >= 0.995x; analysis < 5%% of compile-on-admit "
                "— %s\n",
                ok ? "all hold" : "FAILED");

    if (!json_path.empty()) {
        if (!write_json(json_path, metrics, "fig_program_compile",
                        spec.name.c_str())) {
            return 2;
        }
        std::printf("wrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }
    return ok ? 0 : 1;
}
