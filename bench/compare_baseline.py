#!/usr/bin/env python3
"""Compare a bench JSON run against the checked-in baseline.

Usage: compare_baseline.py BASELINE.json CURRENT.json [--tolerance 0.25]

Both files use the google-benchmark JSON layout ({"benchmarks": [{"name",
"real_time", ...}]}).  Every entry in the baseline must exist in the
current run.  Entries whose name ends in "_speedup" are
higher-is-better (regression = current below baseline / (1 + tol));
everything else is a time (regression = current above baseline * (1 + tol)).

The baseline holds only the *deterministic simulated* metrics emitted by
the fig_* --json benches — wall-clock microbenchmark numbers vary too
much across CI runners to gate on.

Exits 1 on any regression, on any baseline metric missing from the
current run (a deleted bench must not silently disable its gate), and on
an empty or malformed baseline or current file (a truncated artifact must
not read as "all 0 metrics within tolerance").  Metrics present in the
current run but absent from the baseline are listed as ungated so new
benches get baseline entries.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        data = json.load(f)
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise SystemExit(f"error: {path} has no benchmark entries")
    return {b["name"]: float(b["real_time"]) for b in benchmarks}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    failures = []
    drifts = []
    print(f"{'metric':<44}{'baseline':>12}{'current':>12}{'ratio':>8}")
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<44}{base:>12.3f}{'MISSING':>12}")
            continue
        cur = current[name]
        higher_is_better = name.endswith("_speedup")
        if higher_is_better:
            # cur == 0 on a higher-is-better metric is a total collapse.
            ratio = base / cur if cur else float("inf")
        else:
            ratio = cur / base if base else 1.0
        flag = ""
        if ratio > 1.0 + args.tolerance:
            failures.append(
                f"{name}: {base:.3f} -> {cur:.3f} "
                f"({(ratio - 1.0) * 100.0:.1f}% worse)")
            flag = "  REGRESSION"
        elif ratio < 1.0 - args.tolerance:
            drifts.append(
                f"{name}: {base:.3f} -> {cur:.3f} (better; refresh baseline?)")
            flag = "  improved"
        print(f"{name:<44}{base:>12.3f}{cur:>12.3f}{ratio:>8.3f}{flag}")

    for d in drifts:
        print(f"note: {d}")
    ungated = sorted(set(current) - set(baseline))
    if ungated:
        print(f"note: {len(ungated)} metric(s) have no baseline entry "
              f"(not gated): {', '.join(ungated[:8])}"
              f"{', ...' if len(ungated) > 8 else ''}")
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.tolerance * 100.0:.0f}% tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} metrics within "
          f"{args.tolerance * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
