// Figure 14: (a) inline-assembly add_mod/mul_mod optimization of the
// radix-8 SLM NTT; (b) explicit dual-tile submission, both on Device1.
// Reports speedup over the same-point naive baseline and efficiency vs the
// single-tile int64 peak (the paper's accounting; see EXPERIMENTS.md).
#include "bench_common.h"

int main() {
    using namespace bench;
    const auto spec = xehe::xgpu::device1();
    struct Point {
        std::size_t n, inst;
    };
    const Point points[] = {{8192, 64},  {8192, 128},  {8192, 256},
                            {16384, 64}, {16384, 128}, {16384, 256},
                            {32768, 64}, {32768, 128}, {32768, 256},
                            {32768, 512}, {32768, 1024}};
    std::vector<std::string> cols;
    for (const auto &p : points) {
        cols.push_back(std::to_string(p.n / 1024) + "K," +
                       std::to_string(p.inst));
    }

    print_header(
        "Fig. 14(a): radix-8 SLM NTT with inline assembly (Device1, 1 tile)",
        "Figure 14a");
    print_cols("metric \\ (N, inst)", cols);
    std::vector<double> wo_eff, w_eff, gain;
    for (const auto &p : points) {
        const auto wo = run_ntt(spec, NttVariant::LocalRadix8,
                                IsaMode::Compiler, 1, p.n, p.inst);
        const auto w = run_ntt(spec, NttVariant::LocalRadix8,
                               IsaMode::InlineAsm, 1, p.n, p.inst);
        wo_eff.push_back(100.0 * wo.efficiency);
        w_eff.push_back(100.0 * w.efficiency);
        gain.push_back(100.0 * (wo.time_ns / w.time_ns - 1.0));
    }
    print_row("efficiency w/o asm (%)", wo_eff, "%9.2f%%");
    print_row("efficiency w/ asm (%)", w_eff, "%9.2f%%");
    print_row("NTT improvement (%)", gain, "%9.2f%%");

    print_header("Fig. 14(b): explicit dual-tile submission (Device1)",
                 "Figure 14b");
    print_cols("metric \\ (N, inst)", cols);
    std::vector<double> sp1, sp2, eff2;
    for (const auto &p : points) {
        const double naive = run_ntt(spec, NttVariant::NaiveRadix2,
                                     IsaMode::Compiler, 1, p.n, p.inst)
                                 .time_ns;
        const auto one = run_ntt(spec, NttVariant::LocalRadix8,
                                 IsaMode::InlineAsm, 1, p.n, p.inst);
        const auto two = run_ntt(spec, NttVariant::LocalRadix8,
                                 IsaMode::InlineAsm, 2, p.n, p.inst);
        sp1.push_back(naive / one.time_ns);
        sp2.push_back(naive / two.time_ns);
        eff2.push_back(100.0 * two.efficiency);
    }
    print_row("opt 1-tile speedup", sp1, "%10.2fx");
    print_row("opt 2-tile speedup", sp2, "%10.2fx");
    print_row("2-tile efficiency (%)", eff2, "%9.2f%%");

    std::printf(
        "\nPaper reference points: asm improves NTT by 35.8-40.7%%, raising\n"
        "radix-8 efficiency to 47.1%%; dual-tile reaches 79.8%% of peak and\n"
        "9.93x over naive at 32K/1024.\n");
    return 0;
}
