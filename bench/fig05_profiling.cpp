// Figure 5: profiling the five HE evaluation routines on Device1 and
// Device2 with the naive-GPU configuration — relative execution time and
// the fraction spent in NTT/iNTT kernels (the paper reports 79.99% and
// 75.64% NTT share on average).
//
// Parameters follow Section IV-C: N = 32K, RNS size L = 8, un-batched.
#include "bench_common.h"

#include "ckks/encoder.h"

int main() {
    using namespace bench;
    using xehe::core::GpuOptions;
    using xehe::core::kAllRoutines;
    using xehe::core::Routine;
    using xehe::core::RoutineBench;
    using xehe::core::routine_name;

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));

    for (const auto &spec : {xehe::xgpu::device1(), xehe::xgpu::device2()}) {
        print_header(
            ("Fig. 5: routine profiling on " + spec.name + " (naive config)")
                .c_str(),
            "Figure 5");
        GpuOptions opts;
        opts.ntt_variant = NttVariant::NaiveRadix2;
        RoutineBench bench(host, spec, opts, /*functional=*/false);

        std::printf("%-20s%14s%14s%14s%12s\n", "routine", "total (ms)",
                    "NTT (ms)", "other (ms)", "NTT share");
        double weighted_ntt = 0.0, total = 0.0;
        double max_total = 0.0;
        std::vector<std::pair<std::string, xehe::core::RoutineProfile>> rows;
        for (const auto routine : kAllRoutines) {
            const auto p = bench.run(routine);
            rows.emplace_back(routine_name(routine), p);
            weighted_ntt += p.ntt_ms;
            total += p.total_ms();
            max_total = std::max(max_total, p.total_ms());
        }
        for (const auto &[name, p] : rows) {
            std::printf("%-20s%14.3f%14.3f%14.3f%11.1f%%\n", name.c_str(),
                        p.total_ms(), p.ntt_ms, p.other_ms,
                        100.0 * p.ntt_fraction());
        }
        std::printf("%-20s%14s%14s%14s%11.1f%%\n", "average", "", "", "",
                    100.0 * weighted_ntt / total);
        std::printf("\nNormalized execution time (max = 1):\n");
        for (const auto &[name, p] : rows) {
            std::printf("  %-20s%8.3f\n", name.c_str(),
                        p.total_ms() / max_total);
        }
    }
    std::printf(
        "\nPaper reference points: NTT accounts for 79.99%% (Device1) and\n"
        "75.64%% (Device2) of routine time on average.\n");
    return 0;
}
