#!/usr/bin/env python3
"""Merge several google-benchmark-layout JSON files into one artifact.

Usage: merge_bench_json.py OUT.json IN1.json [IN2.json ...]

Inputs that do not exist are skipped with a note (the wall-clock micro
benches are optional — they are only built when google-benchmark is
installed), so the CI artifact degrades gracefully.
"""

import json
import os
import sys


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    out_path, inputs = sys.argv[1], sys.argv[2:]
    merged = {"context": {"sources": []}, "benchmarks": []}
    for path in inputs:
        if not os.path.exists(path):
            print(f"note: {path} not found, skipping")
            continue
        with open(path) as f:
            data = json.load(f)
        merged["context"]["sources"].append(
            {"file": os.path.basename(path),
             "context": data.get("context", {})})
        merged["benchmarks"].extend(data.get("benchmarks", []))
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {len(merged['benchmarks'])} entries from "
          f"{len(merged['context']['sources'])} file(s) to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
