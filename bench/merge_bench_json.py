#!/usr/bin/env python3
"""Merge several google-benchmark-layout JSON files into one artifact.

Usage: merge_bench_json.py [--require] OUT.json IN1.json [IN2.json ...]

By default, inputs that do not exist are skipped with a note (the
wall-clock micro benches are optional — they are only built when
google-benchmark is installed), so the CI artifact degrades gracefully.

With --require, a missing or entry-less input is a hard error: the gated
merge (the file compare_baseline.py diffs against the baseline) must fail
loudly when a gated bench was deleted or failed to write its JSON, instead
of silently dropping that bench's metrics from the gate.

Inputs may also be obs::Registry snapshots (marked "obs_registry": 1, as
written by `fig_serving_latency --metrics` or Registry::write_json).
Their counters/gauges flatten to one benchmark entry each under the
`obs/` prefix, histograms to count/p50/p95/p99 entries, so registry
metrics ride the same artifact (and can be baseline-gated) without a
second pipeline.
"""

import argparse
import json
import os
import sys


def registry_to_entries(data):
    """Flatten an obs::Registry snapshot into benchmark-layout entries."""
    entries = []
    for metric in data.get("metrics", []):
        name = f"obs/{metric['name']}"
        kind = metric.get("type", "counter")
        if kind == "histogram":
            unit = "ns" if metric["name"].endswith("_ns") else "value"
            entries.append({"name": f"{name}/count", "run_type": "iteration",
                            "real_time": metric.get("count", 0),
                            "time_unit": "count"})
            for q in ("p50", "p95", "p99"):
                if q in metric:
                    entries.append({"name": f"{name}/{q}",
                                    "run_type": "iteration",
                                    "real_time": metric[q],
                                    "time_unit": unit})
        else:
            entries.append({"name": name, "run_type": "iteration",
                            "real_time": metric.get("value", 0),
                            "time_unit": "count" if kind == "counter"
                            else "value"})
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require", action="store_true",
                        help="fail on missing or empty inputs")
    parser.add_argument("out")
    parser.add_argument("inputs", nargs="+")
    args = parser.parse_args()

    merged = {"context": {"sources": []}, "benchmarks": []}
    for path in args.inputs:
        if not os.path.exists(path):
            if args.require:
                print(f"error: required input {path} not found",
                      file=sys.stderr)
                return 1
            print(f"note: {path} not found, skipping")
            continue
        with open(path) as f:
            data = json.load(f)
        if data.get("obs_registry") == 1:
            entries = registry_to_entries(data)
        else:
            entries = data.get("benchmarks", [])
        if args.require and not entries:
            print(f"error: required input {path} has no benchmark entries",
                  file=sys.stderr)
            return 1
        merged["context"]["sources"].append(
            {"file": os.path.basename(path),
             "context": data.get("context", {})})
        merged["benchmarks"].extend(entries)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {len(merged['benchmarks'])} entries from "
          f"{len(merged['context']['sources'])} file(s) to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
