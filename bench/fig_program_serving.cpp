// Program-serving ablation: the same deterministic five-routine request
// trace is served twice through InferenceServer on the dual-tile Device1 —
// once as fixed-function requests naming a serve::Op, once as
// serve::Op::Program requests shipping the routine's canonical he::Program
// as wire bytes.  Both paths execute through the he::Program interpreter
// over GpuBackend, so the ablation isolates the cost of the generic
// wire-executable path (program serialization, parsing, validation):
// by design it must be free on the simulated timeline.
//
// `--json <path>` writes the deterministic simulated metrics; CI's
// bench-smoke job merges them into the baseline gate.  Exits non-zero if
// program-based throughput falls below 0.95x the routine-based path.
// N = 32K, L = 8, cost-only (the paper's operating point).
#include <cstring>
#include <random>

#include "bench_common.h"
#include "serve/server.h"

namespace {

/// One deterministic trace cycling the five routines over `sessions`,
/// bursty pseudo-Poisson arrivals (same construction as
/// fig_serving_latency, without the matmul jobs neither path programs).
/// `as_programs` ships each request as Op::Program + canonical bytes.
std::vector<xehe::serve::Request> make_trace(std::size_t count,
                                             std::size_t sessions,
                                             double mean_burst_gap_ns,
                                             uint64_t seed, bool as_programs) {
    std::mt19937_64 rng(seed);
    std::vector<xehe::serve::Request> trace;
    trace.reserve(count);
    double arrival = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        xehe::serve::Request req;
        req.session_id = i % sessions;
        const auto routine = static_cast<xehe::core::Routine>(i % 5);
        if (as_programs) {
            req.op = xehe::serve::Op::Program;
            req.program =
                xehe::wire::serialize(xehe::core::routine_program(routine));
        } else {
            req.op = static_cast<xehe::serve::Op>(i % 5);
        }
        req.cost_only = true;
        if (i % 6 == 0) {
            const double u =
                (static_cast<double>(rng() >> 11) + 0.5) * 0x1p-53;
            arrival += -mean_burst_gap_ns * std::log(u);
        }
        req.arrival_ns = arrival;
        trace.push_back(std::move(req));
    }
    return trace;
}

}  // namespace

int main(int argc, char **argv) {
    using namespace bench;
    using xehe::serve::InferenceServer;
    using xehe::serve::LatencyStats;
    using xehe::serve::ServerConfig;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device1();
    xehe::core::GpuOptions opts;
    opts.isa = IsaMode::InlineAsm;

    xehe::ckks::KeyGenerator keygen(host, 99);
    const auto relin = keygen.create_relin_keys();
    const int steps[] = {1};
    const auto galois = keygen.create_galois_keys(steps);

    constexpr std::size_t kRequests = 40;
    constexpr std::size_t kSessions = 16;
    constexpr double kMeanBurstGapNs = 12.0e6;
    constexpr uint64_t kSeed = 20260729;

    print_header("Program-based vs routine-based serving on Device1",
                 "wire-executable circuits must keep the routine path's "
                 "throughput");
    std::printf("%10s%10s%10s%10s%12s\n", "path", "p50(ms)", "p95(ms)",
                "p99(ms)", "thru(rps)");

    double throughput[2] = {0.0, 0.0};
    std::vector<JsonMetric> metrics;
    for (int pi = 0; pi < 2; ++pi) {
        const bool as_programs = pi == 1;
        ServerConfig cfg;
        cfg.max_batch = 8;
        cfg.batch_window_ns = 2.0e6;
        cfg.queue_count = 0;  // one lane per tile (2 on Device1)
        cfg.functional = false;
        InferenceServer server(host, spec, opts, cfg);
        server.set_keys(relin, galois);
        for (auto &req : make_trace(kRequests, kSessions, kMeanBurstGapNs,
                                    kSeed, as_programs)) {
            server.submit(std::move(req));
        }
        const auto responses = server.run();
        const LatencyStats stats = server.stats();
        if (stats.requests != responses.size() ||
            stats.requests != kRequests) {
            std::fprintf(stderr, "error: %zu of %zu requests served\n",
                         stats.requests, kRequests);
            return 2;
        }
        const char *path = as_programs ? "program" : "routine";
        std::printf("%10s%10.3f%10.3f%10.3f%12.1f\n", path, stats.p50_ms,
                    stats.p95_ms, stats.p99_ms, stats.throughput_rps);
        throughput[pi] = stats.throughput_rps;

        const std::string prefix = std::string("program_serving/") + path;
        metrics.push_back({prefix + "/p95_ms", stats.p95_ms, "ms"});
        metrics.push_back({prefix + "/throughput_rps", stats.throughput_rps,
                           "rps"});
    }

    const double relative = throughput[1] / throughput[0];
    std::printf("\nprogram-path relative throughput: %.3fx (gate >= 0.95x)\n",
                relative);
    metrics.push_back({"program_serving/relative_throughput", relative, "x"});

    if (!json_path.empty()) {
        if (!write_json(json_path, metrics, "fig_program_serving",
                        spec.name.c_str())) {
            return 2;
        }
        std::printf("wrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }
    return relative >= 0.95 ? 0 : 1;
}
