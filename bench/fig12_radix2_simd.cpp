// Figure 12: staged radix-2 NTT with SLM and SIMD shuffling on Device1.
// (a) speedup over the naive baseline across (N, instances) points;
// (b) efficiency (fraction of single-tile int64 peak) vs instance count
//     for the 32K-point, 8-RNS NTT.
#include "bench_common.h"

int main() {
    using namespace bench;
    const auto spec = xehe::xgpu::device1();
    const NttVariant variants[] = {NttVariant::NaiveRadix2,
                                   NttVariant::StagedSimd8,
                                   NttVariant::StagedSimd16,
                                   NttVariant::StagedSimd32};
    const char *names[] = {"naive", "SIMD(8,8)", "SIMD(16,8)", "SIMD(32,8)"};

    print_header("Fig. 12(a): radix-2 SLM+SIMD speedup over naive (Device1)",
                 "Figure 12a");
    struct Point {
        std::size_t n, inst;
    };
    const Point points[] = {{4096, 8},   {8192, 8},   {16384, 8}, {32768, 8},
                            {32768, 16}, {32768, 256}, {32768, 512},
                            {32768, 1024}};
    std::vector<std::string> cols;
    for (const auto &p : points) {
        cols.push_back(std::to_string(p.n / 1024) + "K," +
                       std::to_string(p.inst));
    }
    print_cols("variant \\ (N, inst)", cols);
    std::vector<double> naive_ns;
    for (const auto &p : points) {
        naive_ns.push_back(
            run_ntt(spec, NttVariant::NaiveRadix2, IsaMode::Compiler, 1, p.n,
                    p.inst)
                .time_ns);
    }
    for (std::size_t v = 0; v < 4; ++v) {
        std::vector<double> speedups;
        for (std::size_t i = 0; i < std::size(points); ++i) {
            const auto run = run_ntt(spec, variants[v], IsaMode::Compiler, 1,
                                     points[i].n, points[i].inst);
            speedups.push_back(naive_ns[i] / run.time_ns);
        }
        print_row(names[v], speedups, "%10.2fx");
    }

    print_header("Fig. 12(b): efficiency vs instance count, 32K-point NTT",
                 "Figure 12b");
    const std::size_t instances[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                     1024};
    cols.clear();
    for (auto i : instances) {
        cols.push_back(std::to_string(i));
    }
    print_cols("variant \\ instances", cols);
    for (std::size_t v = 0; v < 4; ++v) {
        std::vector<double> eff;
        for (auto inst : instances) {
            eff.push_back(100.0 *
                          run_ntt(spec, variants[v], IsaMode::Compiler, 1,
                                  32768, inst)
                              .efficiency);
        }
        print_row(names[v], eff, "%9.2f%%");
    }
    std::printf(
        "\nPaper reference points: naive 10.08%%, SIMD(8,8) 12.93%% at "
        "32K/1024;\n"
        "SIMD(8,8) up to 1.28x over naive; SIMD(32,8) slower than baseline.\n");
    return 0;
}
