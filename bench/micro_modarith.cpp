// Wall-clock microbenchmarks (google-benchmark) of the host modular
// arithmetic primitives that everything else is built on.
#include <benchmark/benchmark.h>

#include <random>

#include "util/modarith.h"

namespace xu = xehe::util;

namespace {

const xu::Modulus kModulus(1125899906826241ull);  // 50-bit NTT prime

std::vector<uint64_t> random_inputs(std::size_t count, uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<uint64_t> v(count);
    for (auto &x : v) {
        x = rng() % kModulus.value();
    }
    return v;
}

}  // namespace

static void BM_AddMod(benchmark::State &state) {
    const auto a = random_inputs(4096, 1), b = random_inputs(4096, 2);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xu::add_mod(a[i & 4095], b[i & 4095],
                                             kModulus));
        ++i;
    }
}
BENCHMARK(BM_AddMod);

static void BM_MulModBarrett(benchmark::State &state) {
    const auto a = random_inputs(4096, 3), b = random_inputs(4096, 4);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xu::mul_mod(a[i & 4095], b[i & 4095],
                                             kModulus));
        ++i;
    }
}
BENCHMARK(BM_MulModBarrett);

static void BM_MadModFused(benchmark::State &state) {
    const auto a = random_inputs(4096, 5), b = random_inputs(4096, 6);
    uint64_t acc = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        acc = xu::mad_mod(a[i & 4095], b[i & 4095], acc, kModulus);
        benchmark::DoNotOptimize(acc);
        ++i;
    }
}
BENCHMARK(BM_MadModFused);

static void BM_MulModAddModUnfused(benchmark::State &state) {
    const auto a = random_inputs(4096, 7), b = random_inputs(4096, 8);
    uint64_t acc = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        acc = xu::add_mod(xu::mul_mod(a[i & 4095], b[i & 4095], kModulus), acc,
                          kModulus);
        benchmark::DoNotOptimize(acc);
        ++i;
    }
}
BENCHMARK(BM_MulModAddModUnfused);

static void BM_MulModHarveyOperand(benchmark::State &state) {
    const auto a = random_inputs(4096, 9);
    const xu::MultiplyModOperand w(123456789ull % kModulus.value(), kModulus);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xu::mul_mod(a[i & 4095], w, kModulus));
        ++i;
    }
}
BENCHMARK(BM_MulModHarveyOperand);

static void BM_ForwardButterfly(benchmark::State &state) {
    auto x = random_inputs(4096, 10), y = random_inputs(4096, 11);
    const xu::MultiplyModOperand w(987654321ull % kModulus.value(), kModulus);
    std::size_t i = 0;
    for (auto _ : state) {
        xu::forward_butterfly(&x[i & 4095], &y[i & 4095], w, kModulus);
        benchmark::DoNotOptimize(x[i & 4095]);
        ++i;
    }
}
BENCHMARK(BM_ForwardButterfly);

BENCHMARK_MAIN();
