// Serving-latency sweep over the encrypted-inference frontend: a
// deterministic request trace (mixed Section IV-C routines + matmul tile
// jobs, seeded pseudo-Poisson arrivals) is driven through InferenceServer
// at every batch-size x lane-count point on the dual-tile Device1, and the
// per-request enqueue/dispatch/complete timestamps are folded into
// p50/p95/p99 latency and throughput — the request-level serving metrics
// the makespan-only benches cannot express.
//
// `--json <path>` writes the deterministic simulated metrics; CI's
// bench-smoke job merges them into the baseline gate.  Exits non-zero
// unless dual-lane throughput reaches >= 1.5x single-lane at the default
// batch size.  N = 32K, L = 8, cost-only (the paper's operating point).
//
// Observability hooks: `--trace <path>` records the whole sweep with
// obs::TraceRecorder and writes (self-validated) Chrome trace JSON;
// `--metrics <path>` dumps the obs::Registry snapshot;
// `--overhead <reps>` skips the sweep and instead times the batch-8
// dual-lane point `reps` times with tracing compiled in but DISABLED,
// printing the minimum wall-clock ms — CI diffs this against an
// -DXEHE_OBS=OFF build to gate the disabled-tracing overhead.
#include <chrono>
#include <cstring>
#include <fstream>
#include <random>

#include "bench_common.h"
#include "he/program.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/server.h"
#include "wire/wire.h"

namespace {

/// The client-built circuit the trace ships through the Op::Program
/// front door: the MulLinRS shape as an he::Program, so program requests
/// cost about as much as the routine requests they ride alongside while
/// still paying static admission (serve.analyze) and compile-on-admit.
std::vector<uint8_t> trace_program_bytes() {
    xehe::he::ProgramBuilder b(2);
    b.output(b.rescale(
        b.relinearize(b.multiply(b.input(0), b.input(1)))));
    return xehe::wire::serialize(b.build());
}

/// One deterministic trace: `count` requests round-robined over
/// `sessions`, cycling the five routines with every sixth request a
/// two-tile matmul job and every twelfth a client-built Op::Program
/// circuit (so serving always exercises the static-admission gate).
/// Requests arrive in bursts of six sharing one timestamp (the traffic
/// shape dynamic batching exists for), with burst spacing ~Exp(mean)
/// from the seed via inverse-CDF on raw mt19937_64 words, so the trace
/// is identical on every platform.
std::vector<xehe::serve::Request> make_trace(
    std::size_t count, std::size_t sessions, double mean_burst_gap_ns,
    uint64_t seed, const std::vector<uint8_t> &program) {
    std::mt19937_64 rng(seed);
    std::vector<xehe::serve::Request> trace;
    trace.reserve(count);
    double arrival = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        xehe::serve::Request req;
        req.session_id = i % sessions;
        if (i % 6 == 5) {
            req.op = xehe::serve::Op::MatmulTile;
            req.matmul_tiles = 2;
        } else if (i % 12 == 7) {
            req.op = xehe::serve::Op::Program;
            req.program = program;
        } else {
            req.op = static_cast<xehe::serve::Op>(i % 5);
        }
        req.cost_only = true;
        if (i % 6 == 0) {
            const double u =
                (static_cast<double>(rng() >> 11) + 0.5) * 0x1p-53;
            arrival += -mean_burst_gap_ns * std::log(u);
        }
        req.arrival_ns = arrival;
        trace.push_back(std::move(req));
    }
    return trace;
}

}  // namespace

int main(int argc, char **argv) {
    using namespace bench;
    using xehe::serve::InferenceServer;
    using xehe::serve::LatencyStats;
    using xehe::serve::ServerConfig;

    std::string json_path, trace_path, metrics_path;
    long overhead_reps = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--overhead") == 0 && i + 1 < argc) {
            overhead_reps = std::strtol(argv[++i], nullptr, 10);
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device1();
    xehe::core::GpuOptions opts;
    opts.isa = IsaMode::InlineAsm;

    // Shared tenant keys, as in run_batch_serving.
    xehe::ckks::KeyGenerator keygen(host, 99);
    const auto relin = keygen.create_relin_keys();
    const int steps[] = {1};
    const auto galois = keygen.create_galois_keys(steps);

    constexpr std::size_t kRequests = 48;
    constexpr std::size_t kSessions = 16;
    constexpr double kMeanBurstGapNs = 12.0e6;  // saturates both lanes
    constexpr uint64_t kSeed = 20260729;
    const std::vector<uint8_t> program_bytes = trace_program_bytes();

    if (overhead_reps > 0) {
        // Time the batch-8 dual-lane point with tracing compiled in but
        // disabled — every instrumented site pays exactly its guard
        // branch.  Min-of-reps suppresses scheduler noise; CI compares
        // this against the same binary built with -DXEHE_OBS=OFF.
        double best_ms = 0.0;
        for (long rep = 0; rep < overhead_reps; ++rep) {
            ServerConfig cfg;
            cfg.max_batch = 8;
            cfg.batch_window_ns = 2.0e6;
            cfg.queue_count = 0;
            cfg.functional = false;
            const auto t0 = std::chrono::steady_clock::now();
            InferenceServer server(host, spec, opts, cfg);
            server.set_keys(relin, galois);
            for (auto &req : make_trace(kRequests, kSessions,
                                        kMeanBurstGapNs, kSeed,
                                        program_bytes)) {
                server.submit(std::move(req));
            }
            const std::size_t served = server.run().size();
            const auto t1 = std::chrono::steady_clock::now();
            if (served != kRequests) {
                std::fprintf(stderr, "error: %zu of %zu requests served\n",
                             served, kRequests);
                return 2;
            }
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0).count();
            if (rep == 0 || ms < best_ms) {
                best_ms = ms;
            }
        }
        std::printf("overhead_min_ms %.3f\n", best_ms);
        return 0;
    }

    if (!trace_path.empty()) {
        xehe::obs::TraceRecorder::instance().enable(std::size_t{1} << 17);
        if (!xehe::obs::tracing_enabled()) {
            // XEHE_OBS=OFF compiles the recorder out; an empty export
            // would just fail its own validation below.
            std::fprintf(stderr, "tracing compiled out (XEHE_OBS=OFF), "
                                 "skipping --trace\n");
            trace_path.clear();
        }
    }

    print_header("Serving latency: batch size x lane count on Device1",
                 "Section III-D as a request-level serving pipeline");
    std::printf("%6s%7s%10s%10s%10s%10s%12s%9s\n", "lanes", "batch",
                "p50(ms)", "p95(ms)", "p99(ms)", "mean(ms)", "thru(rps)",
                "batches");

    const int lane_counts[] = {1, 0};  // 0 = one lane per tile (2 on Device1)
    const std::size_t batch_sizes[] = {1, 2, 4, 8};
    std::vector<JsonMetric> metrics;
    double throughput_b8[2] = {0.0, 0.0};

    for (int li = 0; li < 2; ++li) {
        for (const std::size_t batch : batch_sizes) {
            ServerConfig cfg;
            cfg.max_batch = batch;
            cfg.batch_window_ns = 2.0e6;  // 2 ms admission window
            cfg.queue_count = lane_counts[li];
            cfg.functional = false;
            InferenceServer server(host, spec, opts, cfg);
            server.set_keys(relin, galois);
            for (auto &req : make_trace(kRequests, kSessions,
                                        kMeanBurstGapNs, kSeed,
                                        program_bytes)) {
                server.submit(std::move(req));
            }
            const auto responses = server.run();
            const LatencyStats stats = server.stats();
            if (stats.requests != responses.size() ||
                stats.requests != kRequests) {
                std::fprintf(stderr, "error: %zu of %zu requests served\n",
                             stats.requests, kRequests);
                return 2;
            }
            const std::size_t lanes = server.lane_count();
            std::printf("%6zu%7zu%10.3f%10.3f%10.3f%10.3f%12.1f%9zu\n",
                        lanes, batch, stats.p50_ms, stats.p95_ms,
                        stats.p99_ms, stats.mean_ms, stats.throughput_rps,
                        stats.batches);

            const std::string prefix = "serving/l" + std::to_string(lanes) +
                                       "/b" + std::to_string(batch);
            if (batch == 8) {
                metrics.push_back({prefix + "/p50_ms", stats.p50_ms, "ms"});
                metrics.push_back({prefix + "/p95_ms", stats.p95_ms, "ms"});
                metrics.push_back({prefix + "/p99_ms", stats.p99_ms, "ms"});
                metrics.push_back({prefix + "/throughput_rps",
                                   stats.throughput_rps, "rps"});
                throughput_b8[li] = stats.throughput_rps;
            } else if (batch == 1 || batch == 4) {
                metrics.push_back({prefix + "/p95_ms", stats.p95_ms, "ms"});
            }
        }
    }

    const double speedup = throughput_b8[1] / throughput_b8[0];
    std::printf("\nmulti-lane serving throughput speedup (batch 8): %.2fx\n",
                speedup);
    metrics.push_back({"serving/multilane_speedup", speedup, "x"});

    if (!json_path.empty()) {
        if (!write_json(json_path, metrics, "fig_serving_latency",
                        spec.name.c_str())) {
            return 2;
        }
        std::printf("wrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }

    if (!trace_path.empty()) {
        const std::string trace = xehe::obs::chrome_trace_to_string();
        const std::string err = xehe::obs::check_chrome_trace(trace);
        if (!err.empty()) {
            std::fprintf(stderr, "error: exported trace invalid: %s\n",
                         err.c_str());
            return 2;
        }
        std::ofstream out(trace_path);
        out << trace;
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_path.c_str());
            return 2;
        }
        std::printf("wrote %zu spans to %s (dropped %zu)\n",
                    xehe::obs::TraceRecorder::instance().size(),
                    trace_path.c_str(),
                    xehe::obs::TraceRecorder::instance().dropped());
    }

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        xehe::obs::Registry::global().write_json(out);
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         metrics_path.c_str());
            return 2;
        }
        std::printf("wrote registry snapshot to %s\n", metrics_path.c_str());
    }
    return speedup >= 1.5 ? 0 : 1;
}
