// Figure 13: high-radix NTT with shared local memory on Device1.
// (a) speedup over the naive baseline; (b) efficiency vs instance count.
// `--slm-sweep` additionally runs the TER_SLM_GAP_SZ ablation called out in
// DESIGN.md.
#include <cstring>

#include "bench_common.h"

int main(int argc, char **argv) {
    using namespace bench;
    const auto spec = xehe::xgpu::device1();
    const NttVariant variants[] = {NttVariant::NaiveRadix2,
                                   NttVariant::LocalRadix4,
                                   NttVariant::LocalRadix8,
                                   NttVariant::LocalRadix16};
    const char *names[] = {"naive", "local-radix-4", "local-radix-8",
                           "local-radix-16"};

    print_header("Fig. 13(a): high-radix SLM NTT speedup over naive (Device1)",
                 "Figure 13a");
    struct Point {
        std::size_t n, inst;
    };
    const Point points[] = {{4096, 8},   {8192, 8},    {16384, 8}, {32768, 8},
                            {32768, 16}, {32768, 256}, {32768, 512},
                            {32768, 1024}};
    std::vector<std::string> cols;
    for (const auto &p : points) {
        cols.push_back(std::to_string(p.n / 1024) + "K," +
                       std::to_string(p.inst));
    }
    print_cols("variant \\ (N, inst)", cols);
    std::vector<double> naive_ns;
    for (const auto &p : points) {
        naive_ns.push_back(
            run_ntt(spec, NttVariant::NaiveRadix2, IsaMode::Compiler, 1, p.n,
                    p.inst)
                .time_ns);
    }
    for (std::size_t v = 0; v < 4; ++v) {
        std::vector<double> speedups;
        for (std::size_t i = 0; i < std::size(points); ++i) {
            const auto run = run_ntt(spec, variants[v], IsaMode::Compiler, 1,
                                     points[i].n, points[i].inst);
            speedups.push_back(naive_ns[i] / run.time_ns);
        }
        print_row(names[v], speedups, "%10.2fx");
    }

    print_header("Fig. 13(b): efficiency vs instance count, 32K-point NTT",
                 "Figure 13b");
    const std::size_t instances[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                     1024};
    cols.clear();
    for (auto i : instances) {
        cols.push_back(std::to_string(i));
    }
    print_cols("variant \\ instances", cols);
    for (std::size_t v = 0; v < 4; ++v) {
        std::vector<double> eff;
        for (auto inst : instances) {
            eff.push_back(100.0 *
                          run_ntt(spec, variants[v], IsaMode::Compiler, 1,
                                  32768,
                                  inst)
                              .efficiency);
        }
        print_row(names[v], eff, "%9.2f%%");
    }
    std::printf(
        "\nPaper reference points: radix-8 up to 4.23x / 34.1%% efficiency at\n"
        "32K/1024; radix-16 regresses due to GRF register spills.\n");

    if (argc > 1 && std::strcmp(argv[1], "--slm-sweep") == 0) {
        print_header("Ablation: SLM block size (2*TER_SLM_GAP_SZ) for radix-8",
                     "Section III-B2 design choice");
        print_cols("block", {"1024", "2048", "4096", "8192"});
        std::vector<double> times;
        for (std::size_t block : {1024u, 2048u, 4096u, 8192u}) {
            Queue queue(spec, ExecConfig{1, IsaMode::Compiler, true});
            queue.set_functional(false);
            NttConfig cfg;
            cfg.variant = NttVariant::LocalRadix8;
            cfg.slm_block = block;
            GpuNtt ntt(queue, cfg);
            times.push_back(ntt.forward({}, 1024, tables_for(32768, 8)) * 1e-6);
        }
        print_row("sim time (ms)", times);
    }
    return 0;
}
