// Figure 18: the five CKKS evaluation routines on Device2 through
// naive -> SIMD(8,8) -> opt-NTT (radix-8 SLM) -> +inline asm.
// N = 32K, L = 8, un-batched, GPU kernel time only.
#include "bench_common.h"

int main() {
    using namespace bench;
    using xehe::core::GpuOptions;
    using xehe::core::kAllRoutines;
    using xehe::core::RoutineBench;
    using xehe::core::routine_name;

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device2();

    struct Step {
        const char *label;
        NttVariant variant;
        IsaMode isa;
    };
    const Step steps[] = {
        {"naive", NttVariant::NaiveRadix2, IsaMode::Compiler},
        {"SIMD(8,8)", NttVariant::StagedSimd8, IsaMode::Compiler},
        {"opt-NTT", NttVariant::LocalRadix8, IsaMode::Compiler},
        {"opt-NTT+asm", NttVariant::LocalRadix8, IsaMode::InlineAsm},
    };

    print_header("Fig. 18: HE evaluation routines on Device2", "Figure 18");
    std::printf("%-20s%-16s%12s%10s%10s%12s\n", "routine", "step", "norm. time",
                "NTT", "other", "speedup");
    double sum_ntt_gain = 0.0, sum_total_gain = 0.0;
    int count = 0;
    for (const auto routine : kAllRoutines) {
        double baseline_ms = 0.0, baseline_ntt = 0.0;
        for (const auto &step : steps) {
            GpuOptions opts;
            opts.ntt_variant = step.variant;
            opts.isa = step.isa;
            RoutineBench bench(host, spec, opts, /*functional=*/false);
            const auto p = bench.run(routine);
            if (baseline_ms == 0.0) {
                baseline_ms = p.total_ms();
                baseline_ntt = p.ntt_ms;
            }
            std::printf("%-20s%-16s%12.3f%10.3f%10.3f%11.2fx\n",
                        routine_name(routine), step.label,
                        p.total_ms() / baseline_ms, p.ntt_ms / baseline_ms,
                        p.other_ms / baseline_ms, baseline_ms / p.total_ms());
            if (std::string(step.label) == "SIMD(8,8)") {
                sum_ntt_gain += baseline_ntt / p.ntt_ms - 1.0;
                sum_total_gain += baseline_ms / p.total_ms() - 1.0;
                ++count;
            }
        }
    }
    std::printf(
        "\nSIMD(8,8) average: NTT part improved %.1f%%, routines %.1f%%\n",
        100.0 * sum_ntt_gain / count, 100.0 * sum_total_gain / count);
    std::printf(
        "Paper reference points: SIMD(8,8) improves the NTT part 34%% and\n"
        "routines 29.6%% on average; final step reaches 2.32-2.41x.\n");
    return 0;
}
