// Figure 17: NTT optimization steps on Device2 (the smaller single-tile
// GPU): naive -> SIMD(8,8) -> radix-8 SLM (opt-NTT) -> + inline assembly.
// Reports efficiency and speedup over the naive baseline per (N, inst).
#include "bench_common.h"

int main() {
    using namespace bench;
    const auto spec = xehe::xgpu::device2();
    struct Point {
        std::size_t n, inst;
    };
    const Point points[] = {{8192, 64},  {8192, 128},  {8192, 256},
                            {16384, 64}, {16384, 128}, {16384, 256},
                            {32768, 64}, {32768, 128}, {32768, 256},
                            {32768, 512}, {32768, 1024}};
    std::vector<std::string> cols;
    for (const auto &p : points) {
        cols.push_back(std::to_string(p.n / 1024) + "K," +
                       std::to_string(p.inst));
    }

    struct Step {
        const char *label;
        NttVariant variant;
        IsaMode isa;
    };
    const Step steps[] = {
        {"naive", NttVariant::NaiveRadix2, IsaMode::Compiler},
        {"SIMD(8,8)", NttVariant::StagedSimd8, IsaMode::Compiler},
        {"opt-NTT", NttVariant::LocalRadix8, IsaMode::Compiler},
        {"opt-NTT+asm", NttVariant::LocalRadix8, IsaMode::InlineAsm},
    };

    print_header("Fig. 17 (top): NTT efficiency on Device2", "Figure 17");
    print_cols("step \\ (N, inst)", cols);
    std::vector<std::vector<double>> times(std::size(steps));
    for (std::size_t s = 0; s < std::size(steps); ++s) {
        std::vector<double> eff;
        for (const auto &p : points) {
            const auto run =
                run_ntt(spec, steps[s].variant, steps[s].isa, 1, p.n, p.inst);
            times[s].push_back(run.time_ns);
            eff.push_back(100.0 * run.efficiency);
        }
        print_row(steps[s].label, eff, "%9.2f%%");
    }

    print_header("Fig. 17 (bottom): speedup over naive on Device2",
                 "Figure 17");
    print_cols("step \\ (N, inst)", cols);
    for (std::size_t s = 0; s < std::size(steps); ++s) {
        std::vector<double> speedup;
        for (std::size_t i = 0; i < std::size(points); ++i) {
            speedup.push_back(times[0][i] / times[s][i]);
        }
        print_row(steps[s].label, speedup, "%10.2fx");
    }
    std::printf(
        "\nPaper reference points: naive ~15%%, SIMD(8,8) 20.95-24.21%%,\n"
        "radix-8 up to 66.8%% (5.47x), +asm 85.75%% (7.02x) at 32K/1024.\n");
    return 0;
}
