// Figure 19: encrypted element-wise polynomial matrix multiplication on
// Device1 and Device2, through the cumulative optimization steps
// baseline -> +mad_mod fusion -> +inline asm -> +memory cache.
// matMul_mxnxk with 8K-element polynomial entries; the simulated time
// covers allocation, encoding/encryption upload, compute and download,
// exactly as the paper measures the whole process.
#include "bench_common.h"

#include "xehe/matmul.h"

int main() {
    using namespace bench;
    using xehe::core::MatmulConfig;
    using xehe::core::run_encrypted_matmul;

    struct Step {
        const char *label;
        bool mad;
        IsaMode isa;
        bool cache;
    };
    const Step steps[] = {
        {"baseline", false, IsaMode::Compiler, false},
        {"mad_mod", true, IsaMode::Compiler, false},
        {"inline asm", true, IsaMode::InlineAsm, false},
        {"mem cache", true, IsaMode::InlineAsm, true},
    };
    struct Shape {
        const char *label;
        std::size_t m, n, k;
    };
    const Shape shapes[] = {{"matMul_100x10x1", 100, 10, 1},
                            {"matMul_10x9x8", 10, 9, 8}};

    for (const auto &spec : {xehe::xgpu::device1(), xehe::xgpu::device2()}) {
        print_header(("Fig. 19: encrypted matMul on " + spec.name).c_str(),
                     "Figure 19");
        std::printf("%-18s%-14s%14s%14s%14s%12s\n", "shape", "step",
                    "total (ms)", "alloc (ms)", "norm. time", "speedup");
        for (const auto &shape : shapes) {
            double baseline_ms = 0.0;
            for (const auto &step : steps) {
                MatmulConfig config;
                config.m = shape.m;
                config.n = shape.n;
                config.k = shape.k;
                config.poly_degree = 8192;
                config.levels = 2;
                config.device = spec;
                config.functional = false;
                config.gpu.ntt_variant = NttVariant::LocalRadix8;
                config.gpu.fuse_mad_mod = step.mad;
                config.gpu.isa = step.isa;
                config.gpu.use_memory_cache = step.cache;
                const auto report = run_encrypted_matmul(config);
                if (baseline_ms == 0.0) {
                    baseline_ms = report.sim_total_ms;
                }
                std::printf("%-18s%-14s%14.2f%14.2f%14.3f%11.2fx\n",
                            shape.label, step.label, report.sim_total_ms,
                            report.sim_alloc_ms,
                            report.sim_total_ms / baseline_ms,
                            baseline_ms / report.sim_total_ms);
            }
        }
    }
    std::printf(
        "\nPaper reference points: mad_mod+asm give 11.8%% / 28.2%% average\n"
        "improvements, memory cache a further ~90%%; 2.68x / 2.79x total on\n"
        "Device1 and 3.11x / 2.82x on Device2.\n");
    return 0;
}
