// Shared harness for the figure/table reproduction benchmarks: NTT sweep
// runner (cost-only at the paper's 32K / 1024-instance operating point),
// table printing, and the paper's parameter defaults (N = 32K, RNS size 8).
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ntt/ntt_gpu.h"
#include "xehe/routines.h"

namespace bench {

/// One deterministic simulated metric destined for the CI baseline diff.
struct JsonMetric {
    std::string name;
    double value = 0.0;       ///< ms for *_ms entries, ratio for *_speedup
    const char *unit = "ms";
};

/// google-benchmark-style JSON so the CI artifact and the baseline diff
/// tooling read one format for simulated and wall-clock benches alike.
/// Returns false if the path cannot be opened for writing.
inline bool write_json(const std::string &path,
                       const std::vector<JsonMetric> &metrics,
                       const char *source, const char *device_name) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return false;
    }
    out << "{\n  \"context\": {\n"
        << "    \"device\": \"" << device_name << "\",\n"
        << "    \"source\": \"" << source << "\",\n"
        << "    \"deterministic\": true\n  },\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const auto &m = metrics[i];
        out << "    {\"name\": \"" << m.name << "\", "
            << "\"run_type\": \"iteration\", "
            << "\"real_time\": " << m.value << ", "
            << "\"time_unit\": \"" << m.unit << "\"}"
            << (i + 1 < metrics.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return out.good();
}

using xehe::ntt::GpuNtt;
using xehe::ntt::NttConfig;
using xehe::ntt::NttTables;
using xehe::ntt::NttVariant;
using xehe::xgpu::DeviceSpec;
using xehe::xgpu::ExecConfig;
using xehe::xgpu::IsaMode;
using xehe::xgpu::Queue;

/// NTT tables cache keyed by (n, rns) — prime search and root powers are
/// expensive enough to reuse across sweep points.
inline const std::vector<NttTables> &tables_for(std::size_t n,
                                                std::size_t rns) {
    static std::map<std::pair<std::size_t, std::size_t>, std::vector<NttTables>>
        cache;
    auto key = std::make_pair(n, rns);
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto moduli = xehe::util::generate_ntt_primes(50, n, rns);
        it = cache.emplace(key, xehe::ntt::make_ntt_tables(n, moduli)).first;
    }
    return it->second;
}

struct NttRun {
    double time_ns = 0.0;
    double alu_ops = 0.0;
    double efficiency = 0.0;  ///< vs single-tile int64 peak (paper's metric)
};

/// Cost-only batched forward NTT at (n, instances, rns) under the given
/// variant/ISA/tile configuration.
inline NttRun run_ntt(const DeviceSpec &spec, NttVariant variant, IsaMode isa,
                      int tiles, std::size_t n, std::size_t instances,
                      std::size_t rns = 8) {
    Queue queue(spec, ExecConfig{tiles, isa, true});
    queue.set_functional(false);
    NttConfig cfg;
    cfg.variant = variant;
    GpuNtt ntt(queue, cfg);
    const auto &tables = tables_for(n, rns);
    NttRun run;
    run.time_ns = ntt.forward({}, instances, tables);
    run.alu_ops = queue.profiler().total_alu_ops();
    run.efficiency =
        run.alu_ops / (run.time_ns * 1e-9) / spec.peak_int64_ops(1);
    return run;
}

inline void print_header(const char *title, const char *paper_ref) {
    std::printf(
        "\n================================================================"
        "\n");
    std::printf("%s\n(reproduces %s)\n", title, paper_ref);
    std::printf(
        "================================================================\n");
}

inline void print_row(const std::string &label,
                      const std::vector<double> &values,
                      const char *fmt = "%10.3f") {
    std::printf("%-28s", label.c_str());
    for (double v : values) {
        std::printf(fmt, v);
    }
    std::printf("\n");
}

inline void print_cols(const char *label,
                       const std::vector<std::string> &cols) {
    std::printf("%-28s", label);
    for (const auto &c : cols) {
        std::printf("%10s", c.c_str());
    }
    std::printf("\n");
}

}  // namespace bench
