// Wall-clock microbenchmarks (google-benchmark) of the reference host NTT
// — the HEXL-equivalent CPU path used as the correctness oracle.
#include <benchmark/benchmark.h>

#include <random>

#include "ntt/ntt_ref.h"

namespace xn = xehe::ntt;
namespace xu = xehe::util;

namespace {

struct Fixture {
    xn::NttTables tables;
    std::vector<uint64_t> data;

    explicit Fixture(std::size_t n)
        : tables(n, xu::generate_ntt_primes(50, n, 1)[0]), data(n) {
        std::mt19937_64 rng(n);
        for (auto &x : data) {
            x = rng() % tables.modulus().value();
        }
    }
};

}  // namespace

static void BM_NttForward(benchmark::State &state) {
    Fixture f(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        xn::ntt_forward(f.data, f.tables);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(32768);

static void BM_NttInverse(benchmark::State &state) {
    Fixture f(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        xn::ntt_inverse(f.data, f.tables);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NttInverse)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(32768);

static void BM_NttRoundtrip(benchmark::State &state) {
    Fixture f(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        xn::ntt_forward(f.data, f.tables);
        xn::ntt_inverse(f.data, f.tables);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_NttRoundtrip)->Arg(4096)->Arg(32768);

BENCHMARK_MAIN();
