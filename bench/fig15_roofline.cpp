// Figure 15 + Table I: roofline analysis of the NTT variants on Device1.
// Prints each variant's operational density (int64 ops per global-memory
// byte), achieved rate, and the memory-bandwidth / compute rooflines, plus
// the paper's Table I per-work-item ALU-op counts used by the cost model.
#include "bench_common.h"

int main() {
    using namespace bench;
    const auto spec = xehe::xgpu::device1();

    print_header("Table I: 64-bit integer ALU ops per work-item per round",
                 "Table I");
    print_cols("radix", {"other", "butterfly", "total"});
    for (int radix : {2, 4, 8, 16}) {
        const double total = xehe::ntt::table1_ops_per_item(radix);
        const double butterfly = xehe::ntt::table1_butterfly_ops(radix);
        print_row("radix-" + std::to_string(radix),
                  {total - butterfly, butterfly, total}, "%10.0f");
    }

    print_header(
        "Fig. 15: roofline on Device1 (32K-point, 8-RNS, 1024 instances)",
        "Figure 15");
    const double peak = spec.peak_int64_ops(1);
    const double bw = spec.gmem_bandwidth(1);
    std::printf("int64 peak (1 tile):        %8.1f Gop/s\n", peak * 1e-9);
    std::printf("int64 peak (2 tiles):       %8.1f Gop/s\n",
                spec.peak_int64_ops(2) * 1e-9);
    std::printf(
        "global memory bandwidth:    %8.1f GB/s (ridge at %.2f op/byte)\n\n",
        bw * 1e-9, peak / bw);

    struct Entry {
        const char *label;
        NttVariant variant;
        IsaMode isa;
        int tiles;
    };
    const Entry entries[] = {
        {"naive radix-2", NttVariant::NaiveRadix2, IsaMode::Compiler, 1},
        {"SLM+simd radix-2", NttVariant::StagedSimd8, IsaMode::Compiler, 1},
        {"SLM+radix-4", NttVariant::LocalRadix4, IsaMode::Compiler, 1},
        {"SLM+radix-8", NttVariant::LocalRadix8, IsaMode::Compiler, 1},
        {"SLM+radix-8+asm", NttVariant::LocalRadix8, IsaMode::InlineAsm, 1},
        {"SLM+radix-8+dual-tile", NttVariant::LocalRadix8, IsaMode::InlineAsm,
         2},
    };
    std::printf("%-24s%16s%16s%14s\n", "variant", "op density",
                "achieved Gop/s",
                "% of peak");
    for (const auto &e : entries) {
        Queue queue(spec, ExecConfig{e.tiles, e.isa, true});
        queue.set_functional(false);
        NttConfig cfg;
        cfg.variant = e.variant;
        GpuNtt ntt(queue, cfg);
        const double time_ns = ntt.forward({}, 1024, tables_for(32768, 8));
        // Operational density: ALU ops per raw global-memory byte, following
        // the paper's Section IV-B traffic accounting.
        const double alu = queue.profiler().total_alu_ops();
        double gmem_bytes = 0.0;
        const std::size_t n = 32768, inst = 1024, rns = 8;
        const double elements = static_cast<double>(n) * inst * rns;
        if (e.variant == NttVariant::NaiveRadix2) {
            gmem_bytes = 16.0 * elements * (xehe::util::log2_exact(n) + 1);
        } else {
            // one strided global pass per global round group + SLM kernel
            gmem_bytes = 32.0 * elements;
        }
        const double density = alu / gmem_bytes;
        const double achieved = alu / (time_ns * 1e-9);
        std::printf("%-24s%16.2f%16.1f%13.1f%%\n", e.label, density,
                    achieved * 1e-9, 100.0 * achieved / peak);
    }
    std::printf(
        "\nPaper reference points: naive density 1.5 (bandwidth-bound),\n"
        "radix-8 density 8.9 (compute-bound); optimized NTT reaches 79.8%%\n"
        "of peak with dual-tile submission.\n");
    return 0;
}
