// Multi-tenant serving at scale: one deterministic bursty trace of
// per-session requests is driven through the sharded serving front end
// (serve::ShardedServer) at 1/2/4 shards, and through a key-budget sweep
// where registered sessions far outnumber the resident expanded keysets —
// the operating regime serve::KeyManager exists for.  All clocks are
// simulated, so every metric is bit-deterministic and baseline-gated.
//
// `--json <path>` writes the metrics; CI's bench-smoke job merges them
// into the baseline gate.  Exits non-zero unless
//   - 2-shard throughput reaches >= 1.5x single-shard on the same trace,
//   - resident expanded key bytes never exceed the configured budget,
//   - the tight-budget p99 stays within 3x of the all-resident p99
//     (eviction churn must cost a bounded tail, not a collapse),
//   - a burst beyond the admission credits is rejected with the typed
//     Overloaded status (backpressure, not silent queue growth).
#include <cstring>

#include "bench_common.h"
#include "serve/sharded_server.h"

namespace {

using xehe::serve::Request;
using xehe::serve::ShardedConfig;
using xehe::serve::ShardedServer;

/// `count` cost-only routine requests in per-session bursts of four
/// (cache-friendly within a burst, cyclic across `sessions` — LRU's worst
/// case when the budget is tight), arriving in one early pile-up so the
/// shards run saturated.
std::vector<Request> make_trace(std::size_t count, std::size_t sessions) {
    std::vector<Request> trace;
    trace.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Request req;
        req.session_id = (i / 4) % sessions;
        req.op = static_cast<xehe::serve::Op>(i % 5);
        req.rotate_step = 1;
        req.cost_only = true;
        req.arrival_ns = static_cast<double>(i) * 1.0e3;  // 1 us apart
        trace.push_back(std::move(req));
    }
    return trace;
}

}  // namespace

int main(int argc, char **argv) {
    using namespace bench;
    using xehe::serve::LatencyStats;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(2048, 6));
    const auto spec = xehe::xgpu::device1();
    xehe::core::GpuOptions opts;
    opts.isa = IsaMode::InlineAsm;

    // Every session registers the same keyset (functional execution is
    // off, so only its shape and byte size matter): one keygen, many
    // tenants, deterministic cache behavior.
    xehe::ckks::KeyGenerator keygen(host, 99);
    const auto relin = keygen.create_relin_keys();
    const int steps[] = {1};
    const auto galois = keygen.create_galois_keys(steps);
    const std::size_t keyset_bytes =
        xehe::serve::expanded_key_bytes(relin, galois);

    constexpr std::size_t kRequests = 384;  // two bursts per session
    constexpr std::size_t kSessions = 48;

    const auto run_config = [&](std::size_t shards,
                                std::size_t budget_keysets) {
        ShardedConfig cfg;
        cfg.shard_count = shards;
        cfg.credits_per_shard = kRequests;  // no rejections in this sweep
        cfg.key_budget_bytes = budget_keysets * keyset_bytes;
        cfg.shard.functional = false;
        cfg.shard.batch_window_ns = 2.0e6;
        ShardedServer server(host, spec, opts, cfg);
        for (uint64_t s = 0; s < kSessions; ++s) {
            server.register_session_keys(s, relin, galois);
        }
        for (auto &req : make_trace(kRequests, kSessions)) {
            server.submit(std::move(req));
        }
        server.run();
        return server.stats();
    };

    print_header("Multi-tenant serving: shard scaling x key-cache budget",
                 "sessions >> resident keys on 1/2/4 simulated devices");
    std::printf("%7s%8s%10s%10s%12s%8s%8s%10s\n", "shards", "budget",
                "p50(ms)", "p99(ms)", "thru(rps)", "hits", "misses",
                "evicted");

    std::vector<JsonMetric> metrics;
    const auto report = [&](const char *tag, const LatencyStats &stats,
                            std::size_t shards, std::size_t budget_keysets) {
        std::printf("%7zu%8zu%10.3f%10.3f%12.1f%8zu%8zu%10zu\n", shards,
                    budget_keysets, stats.p50_ms, stats.p99_ms,
                    stats.throughput_rps, stats.keys.hits, stats.keys.misses,
                    stats.keys.evictions);
        const std::string prefix = std::string("multitenant/") + tag;
        metrics.push_back({prefix + "/p99_ms", stats.p99_ms, "ms"});
        metrics.push_back(
            {prefix + "/throughput_rps", stats.throughput_rps, "rps"});
    };

    bool ok = true;

    // --- shard scaling at a moderate per-shard budget -------------------
    double shard_throughput[3] = {0.0, 0.0, 0.0};
    const std::size_t shard_counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
        const auto stats = run_config(shard_counts[i], 16);
        report(("shards" + std::to_string(shard_counts[i])).c_str(), stats,
               shard_counts[i], 16);
        shard_throughput[i] = stats.throughput_rps;
        if (stats.requests != kRequests || stats.overloaded != 0) {
            std::fprintf(stderr, "error: %zu/%zu served, %zu overloaded\n",
                         stats.requests, kRequests, stats.overloaded);
            ok = false;
        }
        if (stats.keys.peak_resident_bytes > stats.keys.budget_bytes) {
            std::fprintf(stderr,
                         "error: resident keys %zu exceed budget %zu\n",
                         stats.keys.peak_resident_bytes,
                         stats.keys.budget_bytes);
            ok = false;
        }
    }
    const double scaling = shard_throughput[1] / shard_throughput[0];
    std::printf("\n2-shard throughput scaling: %.2fx\n", scaling);
    metrics.push_back({"multitenant/shard2_speedup", scaling, "x"});
    if (scaling < 1.5) {
        std::fprintf(stderr, "error: 2-shard scaling %.2fx < 1.5x\n",
                     scaling);
        ok = false;
    }

    // --- key-budget sweep on one shard: 48 sessions vs 4..48 resident ---
    double p99_tight = 0.0;
    double p99_all = 0.0;
    for (const std::size_t budget : {std::size_t{4}, std::size_t{16},
                                     std::size_t{48}}) {
        const auto stats = run_config(1, budget);
        report(("budget" + std::to_string(budget)).c_str(), stats, 1,
               budget);
        const double total =
            static_cast<double>(stats.keys.hits + stats.keys.misses);
        metrics.push_back(
            {"multitenant/budget" + std::to_string(budget) + "/hit_rate",
             total > 0.0 ? static_cast<double>(stats.keys.hits) / total : 0.0,
             "ratio"});
        if (stats.keys.peak_resident_bytes > stats.keys.budget_bytes) {
            std::fprintf(stderr,
                         "error: resident keys %zu exceed budget %zu\n",
                         stats.keys.peak_resident_bytes,
                         stats.keys.budget_bytes);
            ok = false;
        }
        if (budget == 4) {
            p99_tight = stats.p99_ms;
        } else if (budget == 48) {
            p99_all = stats.p99_ms;
        }
    }
    const double tail_ratio = p99_tight / p99_all;
    std::printf("tight-budget p99 inflation: %.2fx\n", tail_ratio);
    metrics.push_back({"multitenant/tight_budget_p99_ratio", tail_ratio, "x"});
    if (tail_ratio > 3.0) {
        std::fprintf(stderr, "error: tight-budget p99 %.2fx > 3x\n",
                     tail_ratio);
        ok = false;
    }

    // --- backpressure: a burst beyond the admission credits -------------
    {
        ShardedConfig cfg;
        cfg.shard_count = 2;
        cfg.credits_per_shard = 8;
        cfg.key_budget_bytes = 8 * keyset_bytes;
        cfg.shard.functional = false;
        ShardedServer server(host, spec, opts, cfg);
        for (uint64_t s = 0; s < kSessions; ++s) {
            server.register_session_keys(s, relin, galois);
        }
        std::size_t admitted = 0;
        for (auto &req : make_trace(64, kSessions)) {
            admitted += server.submit(std::move(req)) ? 1 : 0;
        }
        server.run();
        const auto stats = server.stats();
        std::printf("overload burst: %zu admitted, %zu rejected typed\n",
                    admitted, stats.overloaded);
        metrics.push_back({"multitenant/overload_rejected",
                           static_cast<double>(stats.overloaded), "count"});
        if (stats.overloaded == 0 ||
            stats.overloaded + admitted != 64) {
            std::fprintf(stderr, "error: overload burst not rejected "
                                 "(admitted %zu, overloaded %zu)\n",
                         admitted, stats.overloaded);
            ok = false;
        }
    }

    if (!json_path.empty()) {
        if (!write_json(json_path, metrics, "fig_multitenant",
                        spec.name.c_str())) {
            return 2;
        }
        std::printf("wrote %zu metrics to %s\n", metrics.size(),
                    json_path.c_str());
    }
    return ok ? 0 : 1;
}
