#!/usr/bin/env python3
"""Structurally validate an exported Chrome trace-event JSON file.

Usage: validate_trace.py TRACE.json [--min-spans N]

Mirrors obs::check_chrome_trace in Python so CI validates the artifact
it uploads with an independent implementation (a bug in the C++ writer
and the C++ checker cancelling out would slip through a self-check):

  * the document parses and has a traceEvents array with "X" events
  * every X event carries name/pid/tid/ts/dur and args.span/args.parent
  * durations are non-negative and span ids unique
  * no parent link dangles
  * a child sits inside its parent's window when both share a clock (pid)
  * every serve.request span has positive duration, carries a request
    ordinal, and its serve.lane children lie within [dispatch, complete]
    by construction of the containment check above
"""

import argparse
import json
import sys


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="require at least this many X events")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing traceEvents array")

    spans = {}
    requests = 0
    for ev in events:
        if ev.get("ph") != "X":
            continue
        name = ev.get("name")
        args_obj = ev.get("args")
        if not isinstance(name, str) or not isinstance(args_obj, dict):
            return fail("X event without name/args")
        for field in ("pid", "tid", "ts", "dur"):
            if not isinstance(ev.get(field), (int, float)):
                return fail(f"X event '{name}' missing {field}")
        if ev["dur"] < 0:
            return fail(f"X event '{name}' has negative duration")
        span_id = args_obj.get("span")
        parent = args_obj.get("parent")
        if not isinstance(span_id, int) or not isinstance(parent, int):
            return fail(f"X event '{name}' missing args.span/args.parent")
        if span_id == 0:
            return fail(f"X event '{name}' has span id 0")
        if span_id in spans:
            return fail(f"duplicate span id {span_id}")
        spans[span_id] = ev
        if name == "serve.request":
            requests += 1
            if ev["dur"] <= 0:
                return fail(f"serve.request span {span_id} has "
                            "no [enqueue, complete] window")
            if args_obj.get("request", 0) == 0:
                return fail(f"serve.request span {span_id} carries "
                            "no request ordinal")

    if len(spans) < args.min_spans:
        return fail(f"only {len(spans)} spans "
                    f"(--min-spans {args.min_spans})")

    for span_id, ev in spans.items():
        parent_id = ev["args"]["parent"]
        if parent_id == 0:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            return fail(f"span '{ev['name']}' ({span_id}) has orphan "
                        f"parent {parent_id}")
        if parent["pid"] != ev["pid"]:
            continue  # clock domains share no origin
        # Tolerance covers the 3-decimal microsecond rounding.
        eps = 2e-3 + 1e-9 * (parent["ts"] + parent["dur"])
        if (ev["ts"] < parent["ts"] - eps or
                ev["ts"] + ev["dur"] > parent["ts"] + parent["dur"] + eps):
            return fail(f"span '{ev['name']}' ({span_id}) escapes parent "
                        f"'{parent['name']}' window")

    print(f"ok: {len(spans)} spans, {requests} serve.request roots, "
          "tree connected and windows consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
