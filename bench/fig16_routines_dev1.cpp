// Figure 16: the five CKKS evaluation routines on Device1 through the
// optimization steps naive -> opt-NTT (radix-8 SLM) -> +inline asm ->
// +explicit dual-tile submission.  Prints normalized execution time with
// the NTT / other split, exactly the stacked bars of the paper.
// N = 32K, L = 8, un-batched, GPU kernel time only (Section IV-C).
#include "bench_common.h"

int main() {
    using namespace bench;
    using xehe::core::GpuOptions;
    using xehe::core::kAllRoutines;
    using xehe::core::RoutineBench;
    using xehe::core::routine_name;

    const xehe::ckks::CkksContext host(
        xehe::ckks::EncryptionParameters::create(32768, 8));
    const auto spec = xehe::xgpu::device1();

    struct Step {
        const char *label;
        NttVariant variant;
        IsaMode isa;
        int tiles;
    };
    const Step steps[] = {
        {"naive", NttVariant::NaiveRadix2, IsaMode::Compiler, 1},
        {"opt-NTT", NttVariant::LocalRadix8, IsaMode::Compiler, 1},
        {"opt-NTT+asm", NttVariant::LocalRadix8, IsaMode::InlineAsm, 1},
        {"opt-NTT+asm+dual-tile", NttVariant::LocalRadix8, IsaMode::InlineAsm,
         2},
    };

    print_header("Fig. 16: HE evaluation routines on Device1", "Figure 16");
    std::printf("%-20s%-24s%12s%10s%10s%12s\n", "routine", "step",
                "norm. time", "NTT", "other", "speedup");
    for (const auto routine : kAllRoutines) {
        double baseline_ms = 0.0;
        for (const auto &step : steps) {
            GpuOptions opts;
            opts.ntt_variant = step.variant;
            opts.isa = step.isa;
            opts.tiles = step.tiles;
            RoutineBench bench(host, spec, opts, /*functional=*/false);
            const auto p = bench.run(routine);
            if (baseline_ms == 0.0) {
                baseline_ms = p.total_ms();
            }
            std::printf("%-20s%-24s%12.3f%10.3f%10.3f%11.2fx\n",
                        routine_name(routine), step.label,
                        p.total_ms() / baseline_ms, p.ntt_ms / baseline_ms,
                        p.other_ms / baseline_ms, baseline_ms / p.total_ms());
        }
    }
    std::printf(
        "\nPaper reference points: radix-8 SLM improves routines 43.5%% on\n"
        "average; +asm a further 27.4%%; dual-tile a further 49.5-78.2%%,\n"
        "up to 3.05x total over the naive baseline.\n");
    return 0;
}
