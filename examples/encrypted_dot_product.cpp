// Encrypted dot product — the private-inference primitive the paper's
// introduction motivates (privacy-preserving ML inference).
//
// Computes <x, w> where x is an encrypted client feature vector and w is
// the server's plaintext weight vector: slot-wise multiply, then a
// log2(slots) rotate-and-add reduction using Galois keys, all on the
// simulated GPU.  The result lands in every slot.
#include <cstdio>
#include <random>
#include <vector>

#include "ckks/encoder.h"
#include "xehe/gpu_evaluator.h"

int main() {
    using namespace xehe;

    const std::size_t n = 4096;
    const ckks::CkksContext context(ckks::EncryptionParameters::create(n, 3));
    const double scale = std::ldexp(1.0, 40);

    ckks::CkksEncoder encoder(context);
    ckks::KeyGenerator keygen(context);
    ckks::Encryptor encryptor(context, keygen.create_public_key());
    ckks::Decryptor decryptor(context, keygen.secret_key());
    const auto relin_keys = keygen.create_relin_keys();

    // Galois keys for all power-of-two rotations used by the reduction.
    std::vector<int> steps;
    for (std::size_t s = 1; s < encoder.slots(); s <<= 1) {
        steps.push_back(static_cast<int>(s));
    }
    const auto galois_keys = keygen.create_galois_keys(steps);

    // Client data and server weights.
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> x(encoder.slots()), w(encoder.slots());
    double expect = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = dist(rng);
        w[i] = dist(rng);
        expect += x[i] * w[i];
    }

    const auto ct_x =
        encryptor.encrypt(encoder.encode(std::span<const double>(x), scale));
    const auto plain_w = encoder.encode(std::span<const double>(w), scale);
    // The host evaluator handles the plaintext product; rotations and
    // additions run on the GPU.
    ckks::Evaluator host_eval(context);
    auto prod = host_eval.rescale(host_eval.multiply_plain(ct_x, plain_w));

    core::GpuContext gpu(context, xgpu::device2(), core::GpuOptions{});
    core::GpuEvaluator evaluator(gpu);
    auto acc = core::upload(gpu, prod);
    for (std::size_t s = 1; s < encoder.slots(); s <<= 1) {
        auto rotated = evaluator.rotate(acc, static_cast<int>(s), galois_keys);
        evaluator.add_inplace(acc, rotated);
    }
    const auto result = core::download(gpu, acc);
    const auto decoded = encoder.decode(decryptor.decrypt(result));

    std::printf("encrypted <x, w> = %.6f\n", decoded[0].real());
    std::printf("plaintext <x, w> = %.6f\n", expect);
    std::printf("absolute error   = %.3e\n",
                std::abs(decoded[0].real() - expect));
    std::printf("simulated GPU time: %.3f ms over %zu kernel classes\n",
                gpu.profiler().total_ns() * 1e-6,
                gpu.profiler().entries().size());
    return 0;
}
