// Batch serving: four concurrent user sessions on one dual-tile device.
//
// Each session encrypts its own inputs, is pinned round-robin to a
// per-tile queue of the GpuEvaluatorPool, evaluates MulLinRS on the GPU
// evaluator of its lane, and decrypts its own result — sessions on
// different tiles overlap on the simulated timeline while every session's
// kernel chain stays in-order on its lane.  Prints per-session accuracy
// and the multi-queue speedup over serialized execution.
#include <cmath>
#include <cstdio>
#include <vector>

#include "ckks/encoder.h"
#include "xehe/evaluator_pool.h"

int main() {
    using namespace xehe;

    const ckks::CkksContext context(
        ckks::EncryptionParameters::create(8192, 3));
    const double scale = std::ldexp(1.0, 40);

    ckks::CkksEncoder encoder(context);
    ckks::KeyGenerator keygen(context);
    ckks::Encryptor encryptor(context, keygen.create_public_key());
    ckks::Decryptor decryptor(context, keygen.secret_key());
    const auto relin_keys = keygen.create_relin_keys();

    // A pool with one lane (queue + evaluator) per tile of Device1.
    core::GpuOptions options;
    options.isa = xgpu::IsaMode::InlineAsm;
    core::GpuEvaluatorPool pool(context, xgpu::device1(), options);
    std::printf("serving on %zu per-tile queues\n\n", pool.lane_count());

    constexpr std::size_t kSessions = 4;
    struct Session {
        std::vector<double> a, b;
        core::GpuCiphertext ct_a, ct_b, result;
    };
    std::vector<Session> sessions(kSessions);

    // Each session uploads private inputs to its lane.
    for (std::size_t s = 0; s < kSessions; ++s) {
        auto &session = sessions[s];
        session.a.resize(encoder.slots());
        session.b.resize(encoder.slots());
        for (std::size_t i = 0; i < session.a.size(); ++i) {
            session.a[i] = 0.001 * static_cast<double>((s + i) % 1000);
            session.b[i] = 1.0 + 0.25 * static_cast<double>(s);
        }
        auto &gpu = pool.session_context(s);
        session.ct_a = core::upload(
            gpu, encryptor.encrypt(encoder.encode(
                     std::span<const double>(session.a), scale)));
        session.ct_b = core::upload(
            gpu, encryptor.encrypt(encoder.encode(
                     std::span<const double>(session.b), scale)));
    }

    // Serve every session; chains stay ordered per lane, lanes overlap.
    for (std::size_t s = 0; s < kSessions; ++s) {
        sessions[s].result = pool.session_evaluator(s).mul_lin_rs(
            sessions[s].ct_a, sessions[s].ct_b, relin_keys);
    }
    const double busy_ms = pool.busy_ns() * 1e-6;
    pool.wait_all();
    const double makespan_ms = pool.makespan_ns() * 1e-6;

    // Each session decrypts its own result.
    std::printf("session  lane      slot[1]     expected      error\n");
    for (std::size_t s = 0; s < kSessions; ++s) {
        const auto ct = core::download(pool.session_context(s),
                                       sessions[s].result);
        const auto decoded = encoder.decode(decryptor.decrypt(ct));
        const double expect = sessions[s].a[1] * sessions[s].b[1];
        std::printf("%7zu %5zu %12.5f %12.5f %10.2e\n", s, pool.lane_of(s),
                    decoded[1].real(), expect,
                    std::abs(decoded[1].real() - expect));
    }

    std::printf("\nsimulated serving: makespan %.3f ms, busy %.3f ms, "
                "%.2fx overlap across %zu queues\n",
                makespan_ms, busy_ms, busy_ms / makespan_ms,
                pool.lane_count());
    return 0;
}
