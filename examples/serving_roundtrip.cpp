// Serving round trip: a client and a server that share nothing but bytes.
//
// The client encodes and symmetrically encrypts two vectors (seed
// compression halves the fresh ciphertext wire size), serializes
// parameters, evaluation keys and requests; the "server" rebuilds its CKKS
// context from the wire parameters, deserializes everything, runs the
// requests on the evaluator pool through the admission queue, and answers
// with serialized responses; the client decrypts the results and checks
// them against the plaintext computation.  Every arrow of Fig. 1's
// client/server flow crosses a real (validated, checksummed) wire buffer.
//
// `--trace <path>` additionally records the served requests with the obs
// tracing subsystem and writes a Chrome trace-event JSON file — load it
// at ui.perfetto.dev to see each request's span tree from wire parse to
// kernel launches.  The file is re-parsed and structurally validated
// before the example reports success.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "ckks/encoder.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/server.h"

int main(int argc, char **argv) {
    using namespace xehe;

    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        }
    }

    // --- client: scheme setup and key material -------------------------
    const ckks::EncryptionParameters params =
        ckks::EncryptionParameters::create(8192, 3);
    const ckks::CkksContext client_ctx(params);
    const double scale = 1099511627776.0;  // 2^40

    ckks::CkksEncoder encoder(client_ctx);
    ckks::KeyGenerator keygen(client_ctx);
    ckks::Encryptor encryptor(client_ctx, keygen.create_public_key(),
                              keygen.secret_key());
    ckks::Decryptor decryptor(client_ctx, keygen.secret_key());

    const auto params_bytes = wire::serialize(params);
    const auto relin_bytes = wire::serialize(keygen.create_relin_keys());
    const int steps[] = {1};
    const auto galois_bytes =
        wire::serialize(keygen.create_galois_keys(steps));

    // --- client: encrypt inputs and build request bytes -----------------
    std::vector<double> a(encoder.slots()), b(encoder.slots());
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 0.001 * static_cast<double>(i % 1000);
        b[i] = 1.5 - 0.0005 * static_cast<double>(i % 2000);
    }
    const auto ct_a = encryptor.encrypt_symmetric(
        encoder.encode(std::span<const double>(a), scale));
    const auto ct_b = encryptor.encrypt_symmetric(
        encoder.encode(std::span<const double>(b), scale));

    ckks::Ciphertext expanded = ct_a;
    expanded.a_seeded = false;
    std::printf("wire sizes (bytes):\n");
    std::printf("  parameters            %10zu\n", params_bytes.size());
    std::printf("  relin keys            %10zu\n", relin_bytes.size());
    std::printf("  ciphertext (seeded)   %10zu\n",
                wire::serialized_bytes(ct_a));
    std::printf("  ciphertext (expanded) %10zu  (seed compression %.2fx)\n",
                wire::serialized_bytes(expanded),
                static_cast<double>(wire::serialized_bytes(expanded)) /
                    static_cast<double>(wire::serialized_bytes(ct_a)));

    serve::Request mul;
    mul.session_id = 0;
    mul.op = serve::Op::MulLinRS;
    mul.inputs.push_back(wire::serialize(ct_a));
    mul.inputs.push_back(wire::serialize(ct_b));
    serve::Request rot;
    rot.session_id = 1;
    rot.op = serve::Op::Rotate;
    rot.rotate_step = 1;
    rot.arrival_ns = 1000.0;
    rot.inputs.push_back(wire::serialize(ct_a));
    const auto mul_bytes = wire::serialize(mul);
    const auto rot_bytes = wire::serialize(rot);
    std::printf("  MulLinRS request      %10zu\n", mul_bytes.size());
    std::printf("  Rotate request        %10zu\n\n", rot_bytes.size());

    // --- server: everything reconstructed from bytes --------------------
    const ckks::CkksContext server_ctx(wire::load_parameters(params_bytes));
    if (!trace_path.empty()) {
        obs::TraceRecorder::instance().enable();
        if (!obs::tracing_enabled()) {
            // XEHE_OBS=OFF compiles the recorder out; an empty export
            // would just fail its own validation below.
            std::printf("tracing compiled out (XEHE_OBS=OFF), "
                        "skipping --trace\n");
            trace_path.clear();
        }
    }
    serve::InferenceServer server(server_ctx, xgpu::device1(),
                                  core::GpuOptions{});
    server.set_keys(wire::load_relin_keys(relin_bytes, server_ctx),
                    wire::load_galois_keys(galois_bytes, server_ctx));
    server.submit(mul_bytes);
    server.submit(rot_bytes);
    std::vector<std::vector<uint8_t>> response_bytes;
    for (const auto &resp : server.run()) {
        response_bytes.push_back(wire::serialize(resp));
    }

    // --- client: decrypt and verify the served results ------------------
    int failures = 0;
    for (const auto &bytes : response_bytes) {
        const auto resp = serve::load_response(bytes);
        if (!resp.ok) {
            std::printf("request %llu FAILED: %s\n",
                        static_cast<unsigned long long>(resp.session_id),
                        resp.error.c_str());
            ++failures;
            continue;
        }
        const auto result =
            wire::load_ciphertext(resp.result, client_ctx);
        const auto decoded = encoder.decode(decryptor.decrypt(result));
        double max_err = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double expect = resp.session_id == 0
                                      ? a[i] * b[i]
                                      : a[(i + 1) % a.size()];
            max_err = std::max(max_err,
                               std::abs(decoded[i].real() - expect));
        }
        std::printf("request %llu (%s): latency %.3f ms "
                    "(queueing %.3f ms), max error %.2e\n",
                    static_cast<unsigned long long>(resp.session_id),
                    resp.session_id == 0 ? "MulLinRS" : "Rotate",
                    resp.latency_ns() * 1e-6, resp.queueing_ns() * 1e-6,
                    max_err);
        if (max_err > 1e-2) {
            ++failures;
        }
    }

    const auto stats = server.stats();
    std::printf("\nserved %zu requests in %zu batch(es), "
                "p99 latency %.3f ms, %.1f req/s\n",
                stats.requests, stats.batches, stats.p99_ms,
                stats.throughput_rps);

    if (!trace_path.empty()) {
        // Self-check before writing: the exported bytes must parse and
        // pass the structural span-tree validation.
        const std::string trace = obs::chrome_trace_to_string();
        const std::string err = obs::check_chrome_trace(trace);
        if (!err.empty()) {
            std::printf("trace export FAILED validation: %s\n", err.c_str());
            ++failures;
        } else {
            std::ofstream out(trace_path);
            out << trace;
            if (!out.good()) {
                std::printf("cannot write %s\n", trace_path.c_str());
                ++failures;
            } else {
                std::printf("wrote %zu spans to %s "
                            "(load at ui.perfetto.dev)\n",
                            obs::TraceRecorder::instance().size(),
                            trace_path.c_str());
            }
        }
    }
    return failures == 0 && stats.requests == 2 ? 0 : 1;
}
