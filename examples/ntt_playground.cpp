// NTT playground: runs every simulated-GPU NTT variant functionally on the
// same batch, verifies they are bit-exact against the reference transform,
// and prints their simulated times and efficiencies on both devices —
// a miniature of Figures 12/13/17.
#include <cstdio>
#include <random>
#include <vector>

#include "ntt/ntt_gpu.h"

int main() {
    using namespace xehe;
    using ntt::NttVariant;

    const std::size_t n = 4096, polys = 2, rns = 2;
    const auto moduli = util::generate_ntt_primes(50, n, rns);
    const auto tables = ntt::make_ntt_tables(n, moduli);

    std::vector<uint64_t> input(polys * rns * n);
    std::mt19937_64 rng(7);
    for (std::size_t t = 0; t < polys * rns; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
            input[t * n + i] = rng() % moduli[t % rns].value();
        }
    }
    // Reference result.
    std::vector<uint64_t> expect = input;
    for (std::size_t t = 0; t < polys * rns; ++t) {
        ntt::ntt_forward(std::span<uint64_t>(expect).subspan(t * n, n),
                         tables[t % rns]);
    }

    const NttVariant variants[] = {
        NttVariant::NaiveRadix2,  NttVariant::StagedSimd8,
        NttVariant::StagedSimd16, NttVariant::StagedSimd32,
        NttVariant::LocalRadix4,  NttVariant::LocalRadix8,
        NttVariant::LocalRadix16,
    };

    for (const auto &spec : {xgpu::device1(), xgpu::device2()}) {
        std::printf("\n--- %s (N=%zu, %zu transforms) ---\n", spec.name.c_str(),
                    n, polys * rns);
        std::printf("%-16s%14s%12s%10s\n", "variant", "sim time (us)",
                    "efficiency", "bit-exact");
        for (const auto variant : variants) {
            xgpu::Queue queue(spec);
            ntt::NttConfig cfg;
            cfg.variant = variant;
            cfg.slm_block = 1024;
            cfg.wg_size = 128;
            ntt::GpuNtt gpu_ntt(queue, cfg);
            std::vector<uint64_t> data = input;
            const double ns = gpu_ntt.forward(data, polys, tables);
            const double eff = queue.profiler().total_alu_ops() /
                               (ns * 1e-9) / spec.peak_int64_ops(1);
            std::printf("%-16s%14.1f%11.1f%%%10s\n", ntt::variant_name(variant),
                        ns * 1e-3, 100.0 * eff,
                        data == expect ? "yes" : "NO!");
        }
    }
    return 0;
}
