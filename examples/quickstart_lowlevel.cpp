// Low-level quickstart: the full XeHE pipeline end to end, against the
// raw layer-by-layer API (encoder / encryptor / wire / GpuEvaluator) —
// kept as the reference for what he::Session (examples/quickstart.cpp)
// automates.  Encodes two real vectors, encrypts on the host, uploads to
// the simulated Intel GPU, computes (a * b) with relinearization and
// rescaling on the GPU evaluator, downloads, decrypts, and prints a few
// slots next to the expected plaintext results.
#include <cstdio>
#include <vector>

#include "ckks/encoder.h"
#include "wire/wire.h"
#include "xehe/gpu_evaluator.h"

int main() {
    using namespace xehe;

    // 1. Parameters: N = 8192 with 3 data primes (+1 special prime).
    const ckks::CkksContext context(
        ckks::EncryptionParameters::create(8192, 3));
    const double scale = std::ldexp(1.0, 40);

    // 2. Host-side scheme objects (key generation stays on the CPU).
    ckks::CkksEncoder encoder(context);
    ckks::KeyGenerator keygen(context);
    ckks::Encryptor encryptor(context, keygen.create_public_key(),
                              keygen.secret_key());
    ckks::Decryptor decryptor(context, keygen.secret_key());
    const auto relin_keys = keygen.create_relin_keys();

    // 3. Encode + encrypt two vectors.  Symmetric encryption records the
    //    PRNG seed of its uniform component, so the wire format ships the
    //    seed instead of half the ciphertext (seed compression).
    std::vector<double> a(encoder.slots()), b(encoder.slots());
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 0.001 * static_cast<double>(i % 1000);
        b[i] = 1.5 - 0.0005 * static_cast<double>(i % 2000);
    }
    const auto fresh_a = encryptor.encrypt_symmetric(
        encoder.encode(std::span<const double>(a), scale));
    const auto fresh_b = encryptor.encrypt_symmetric(
        encoder.encode(std::span<const double>(b), scale));

    // 3b. Save -> load round trip through the versioned wire format, the
    //     client -> server hop of the serving pipeline.  Everything past
    //     this line works on the reloaded ciphertexts.
    ckks::Ciphertext expanded_a = fresh_a;
    expanded_a.a_seeded = false;  // size of the same ciphertext, unseeded
    std::printf("wire: ciphertext %zu bytes seeded, %zu expanded (%.2fx); "
                "relin keys %zu bytes\n",
                wire::serialized_bytes(fresh_a),
                wire::serialized_bytes(expanded_a),
                static_cast<double>(wire::serialized_bytes(expanded_a)) /
                    static_cast<double>(wire::serialized_bytes(fresh_a)),
                wire::serialized_bytes(relin_keys));
    const auto ct_a =
        wire::load_ciphertext(wire::serialize(fresh_a), context);
    const auto ct_b =
        wire::load_ciphertext(wire::serialize(fresh_b), context);

    // 4. GPU context: radix-8 SLM NTT, inline assembly, memory cache,
    //    asynchronous pipeline — the paper's full optimization stack.
    core::GpuOptions options;
    options.isa = xgpu::IsaMode::InlineAsm;
    core::GpuContext gpu(context, xgpu::device1(), options);
    core::GpuEvaluator evaluator(gpu);

    // 5. Upload, evaluate MulLinRS on the GPU, download (the only blocking
    //    synchronization point).
    auto gpu_a = core::upload(gpu, ct_a);
    auto gpu_b = core::upload(gpu, ct_b);
    auto gpu_prod = evaluator.mul_lin_rs(gpu_a, gpu_b, relin_keys);
    const auto ct_prod = core::download(gpu, gpu_prod);

    // 6. Decrypt + decode.
    const auto decoded = encoder.decode(decryptor.decrypt(ct_prod));

    std::printf(
        "slot        a          b        a*b    decrypted      error\n");
    for (std::size_t i : {0u, 1u, 7u, 100u, 4095u}) {
        const double expect = a[i] * b[i];
        std::printf("%4zu %10.5f %10.5f %10.5f %12.5f %10.2e\n", i, a[i], b[i],
                    expect, decoded[i].real(),
                    std::abs(decoded[i].real() - expect));
    }
    std::printf("\nSimulated GPU time: %.3f ms (%.1f%% spent in NTT kernels)\n",
                gpu.profiler().total_ns() * 1e-6,
                100.0 * gpu.profiler().ntt_fraction());
    return 0;
}
