// The paper's application benchmark as a runnable example: encrypted
// element-wise polynomial matrix multiplication (Section IV-E), functional
// (every kernel really executes) at a laptop-friendly size, with the
// memory-cache ablation shown side by side.
#include <cstdio>

#include "xehe/matmul.h"

int main() {
    using namespace xehe;

    core::MatmulConfig config;
    config.m = 4;
    config.n = 3;
    config.k = 2;
    config.poly_degree = 4096;
    config.levels = 2;
    config.device = xgpu::device1();
    config.functional = true;
    config.verify_samples = 4;

    std::printf("Encrypted matMul_%zux%zux%zu, N = %zu, L = %zu\n", config.m,
                config.n, config.k, config.poly_degree, config.levels);

    for (bool cache : {false, true}) {
        config.gpu.use_memory_cache = cache;
        const auto report = core::run_encrypted_matmul(config);
        std::printf(
            "\nmemory cache %-3s: %zu products, simulated %.2f ms total\n"
            "  allocation: %.2f ms (%zu device allocs, %zu cache hits)\n"
            "  kernels:    %.2f ms\n"
            "  max decrypted error vs plaintext: %.3e\n",
            cache ? "ON" : "OFF", report.products, report.sim_total_ms,
            report.sim_alloc_ms, report.alloc.device_allocs,
            report.alloc.cache_hits, report.sim_kernel_ms, report.max_error);
    }
    return 0;
}
