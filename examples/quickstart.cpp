// Quickstart: the unified he:: frontend end to end.
//
// One he::Session over the simulated-GPU backend owns the keys and the
// scale/level bookkeeping: encrypt two vectors, compose
// add(multiply(a, b), c) - 0.25 * rotate(a, 1) without touching
// relinearize/rescale/mod-switch, decrypt, and compare against the
// plaintext reference.  Then the same computation travels as a
// wire-serialized he::Program — the circuit a client would ship to the
// serving frontend — and produces the identical ciphertext.
// The raw layer-by-layer API this automates lives in
// examples/quickstart_lowlevel.cpp.
#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "he/registry.h"
#include "he/session.h"
#include "xgpu/device.h"

int main() {
    using namespace xehe;

    // 1. Parameters, then a backend through the registry: "gpu" (radix-8
    //    SLM NTT, inline asm, memory cache, async pipeline — the paper's
    //    full stack) when its capability probe passes, the host oracle
    //    otherwise.  Try XEHE_DISABLE_BACKENDS=gpu to watch the same
    //    program degrade gracefully.
    const ckks::CkksContext context(
        ckks::EncryptionParameters::create(8192, 3));
    he::BackendEnv env;
    env.context = &context;
    env.options.isa = xgpu::IsaMode::InlineAsm;
    const he::BackendBundle bundle =
        he::BackendRegistry::instance().create_or_host("gpu", env);
    he::Backend &backend = bundle.backend();
    std::printf("backend: %s\n", backend.name());

    // 2. One session = keys + encoder + automatic scale/level management.
    he::Session session(backend);

    std::vector<double> a(context.slots()), b(context.slots()),
        c(context.slots());
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 0.001 * static_cast<double>(i % 1000);
        b[i] = 1.5 - 0.0005 * static_cast<double>(i % 2000);
        c[i] = 0.25 * std::sin(0.01 * static_cast<double>(i));
    }
    const auto ct_a = session.encrypt(a);
    const auto ct_b = session.encrypt(b);
    const auto ct_c = session.encrypt(c);

    // 3. Compose freely: the session relinearizes and rescales the
    //    product, mod-switches the fresh operands down to its level, and
    //    reconciles scales — no manual bookkeeping.
    const auto result = session.sub(
        session.add(session.multiply(ct_a, ct_b), ct_c),
        session.multiply(session.rotate(ct_a, 1), 0.25));

    // 4. Decrypt and compare.
    const auto decoded = session.decrypt(result);
    std::printf(
        "slot     a*b + c - 0.25*rot(a)    decrypted        error\n");
    for (std::size_t i : {0u, 1u, 7u, 100u, 4095u}) {
        const double expect =
            a[i] * b[i] + c[i] - 0.25 * a[(i + 1) % a.size()];
        std::printf("%4zu %20.6f %16.6f %12.2e\n", i, expect, decoded[i],
                    std::abs(decoded[i] - expect));
    }

    // 5. The same circuit as a wire-executable he::Program: built once,
    //    serialized (what a client ships to serve::InferenceServer),
    //    reloaded and interpreted over the same backend.
    he::ProgramBuilder builder(3);
    const auto prod =
        builder.rescale(builder.relinearize(
            builder.multiply(builder.input(0), builder.input(1))));
    builder.output(builder.mod_switch_add(prod, builder.input(2)));
    const auto bytes = wire::serialize(builder.build());
    const he::Program circuit = he::load_program(bytes, context);
    const std::array inputs{ct_a, ct_b, ct_c};
    const auto outputs = session.run(circuit, inputs);
    std::printf("\nprogram: %zu wire bytes, %zu nodes, output level %zu "
                "(scale 2^%.1f)\n",
                bytes.size(), circuit.nodes.size(), outputs[0].level(),
                std::log2(outputs[0].scale()));

    if (auto *gpu_backend = dynamic_cast<he::GpuBackend *>(&backend)) {
        auto &profiler = gpu_backend->gpu().profiler();
        std::printf("Simulated GPU time: %.3f ms (%.1f%% in NTT kernels)\n",
                    profiler.total_ns() * 1e-6,
                    100.0 * profiler.ntt_fraction());
    }
    return 0;
}
